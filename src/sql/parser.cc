#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"

namespace skyline {

std::string_view CompareOpText(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

CompareOp OpFromText(const std::string& text) {
  if (text == "=") return CompareOp::kEq;
  if (text == "!=") return CompareOp::kNe;
  if (text == "<") return CompareOp::kLt;
  if (text == "<=") return CompareOp::kLe;
  if (text == ">") return CompareOp::kGt;
  return CompareOp::kGe;
}

CompareOp FlipOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      return op;
  }
  return op;
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlStatement> Parse() {
    if (Peek().kind == TokenKind::kKeyword && Peek().text == "INSERT") {
      return ParseInsert();
    }
    if (Peek().kind == TokenKind::kKeyword && Peek().text == "DELETE") {
      return ParseDelete();
    }
    SKYLINE_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelectStatement());
    return SqlStatement(std::move(stmt));
  }

  Result<SelectStatement> ParseSelectStatement() {
    SelectStatement stmt;
    if (AcceptKeyword("EXPLAIN")) {
      stmt.explain = AcceptKeyword("ANALYZE") ? ExplainMode::kAnalyze
                                              : ExplainMode::kPlan;
    }
    SKYLINE_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SKYLINE_RETURN_IF_ERROR(ParseSelectList(&stmt));
    SKYLINE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    SKYLINE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (AcceptKeyword("WHERE")) {
      SKYLINE_RETURN_IF_ERROR(ParsePredicates(&stmt.predicates));
    }
    if (AcceptKeyword("SKYLINE")) {
      SKYLINE_RETURN_IF_ERROR(ExpectKeyword("OF"));
      SKYLINE_RETURN_IF_ERROR(ParseCriteria(&stmt));
    }
    if (AcceptKeyword("ORDER")) {
      SKYLINE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      SKYLINE_RETURN_IF_ERROR(ParseOrderBy(&stmt));
    }
    if (AcceptKeyword("LIMIT")) {
      SKYLINE_RETURN_IF_ERROR(ParseLimit(&stmt));
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(Peek().offset) +
                                   (Peek().text.empty()
                                        ? ""
                                        : " (near '" + Peek().text + "')"));
  }

  bool AcceptKeyword(const std::string& keyword) {
    if (Peek().kind == TokenKind::kKeyword && Peek().text == keyword) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (!AcceptKeyword(keyword)) return Error("expected " + keyword);
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected " + what);
    }
    return Advance().text;
  }

  Status ParseSelectList(SelectStatement* stmt) {
    if (Peek().kind == TokenKind::kStar) {
      Advance();
      return Status::OK();  // empty columns == *
    }
    while (true) {
      SKYLINE_ASSIGN_OR_RETURN(std::string column,
                               ExpectIdentifier("column name"));
      stmt->columns.push_back(std::move(column));
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Result<SqlStatement> ParseInsert() {
    SKYLINE_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    SKYLINE_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStatement stmt;
    SKYLINE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    SKYLINE_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      if (Peek().kind != TokenKind::kLParen) {
        return Error("expected '(' before VALUES row");
      }
      Advance();
      std::vector<SqlLiteral> row;
      while (true) {
        SqlLiteral literal;
        SKYLINE_RETURN_IF_ERROR(ParseLiteral(&literal));
        row.push_back(std::move(literal));
        if (Peek().kind != TokenKind::kComma) break;
        Advance();
      }
      if (Peek().kind != TokenKind::kRParen) {
        return Error("expected ')' after VALUES row");
      }
      Advance();
      stmt.rows.push_back(std::move(row));
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return SqlStatement(std::move(stmt));
  }

  Result<SqlStatement> ParseDelete() {
    SKYLINE_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    SKYLINE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStatement stmt;
    SKYLINE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (AcceptKeyword("WHERE")) {
      SKYLINE_RETURN_IF_ERROR(ParsePredicates(&stmt.predicates));
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return SqlStatement(std::move(stmt));
  }

  Status ParsePredicates(std::vector<SqlPredicate>* out) {
    while (true) {
      SKYLINE_RETURN_IF_ERROR(ParseOnePredicate(out));
      if (!AcceptKeyword("AND")) break;
    }
    return Status::OK();
  }

  Status ParseOnePredicate(std::vector<SqlPredicate>* out) {
    SqlPredicate predicate;
    const bool literal_first = Peek().kind == TokenKind::kNumber ||
                               Peek().kind == TokenKind::kString;
    if (literal_first) {
      SKYLINE_RETURN_IF_ERROR(ParseLiteral(&predicate.literal));
    } else {
      SKYLINE_ASSIGN_OR_RETURN(predicate.column,
                               ExpectIdentifier("column in predicate"));
    }
    if (Peek().kind != TokenKind::kOperator) {
      return Error("expected comparison operator");
    }
    predicate.op = OpFromText(Advance().text);
    if (literal_first) {
      SKYLINE_ASSIGN_OR_RETURN(predicate.column,
                               ExpectIdentifier("column in predicate"));
      predicate.op = FlipOp(predicate.op);
    } else {
      SKYLINE_RETURN_IF_ERROR(ParseLiteral(&predicate.literal));
    }
    out->push_back(std::move(predicate));
    return Status::OK();
  }

  Status ParseLiteral(SqlLiteral* out) {
    if (Peek().kind == TokenKind::kNumber) {
      *out = std::strtod(Advance().text.c_str(), nullptr);
      return Status::OK();
    }
    if (Peek().kind == TokenKind::kString) {
      *out = Advance().text;
      return Status::OK();
    }
    return Error("expected literal");
  }

  Status ParseCriteria(SelectStatement* stmt) {
    while (true) {
      SKYLINE_ASSIGN_OR_RETURN(std::string column,
                               ExpectIdentifier("skyline column"));
      Directive directive = Directive::kMax;  // the paper's default
      if (AcceptKeyword("MAX")) {
        directive = Directive::kMax;
      } else if (AcceptKeyword("MIN")) {
        directive = Directive::kMin;
      } else if (AcceptKeyword("DIFF")) {
        directive = Directive::kDiff;
      }
      stmt->skyline.push_back({std::move(column), directive});
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseOrderBy(SelectStatement* stmt) {
    while (true) {
      SKYLINE_ASSIGN_OR_RETURN(std::string column,
                               ExpectIdentifier("ORDER BY column"));
      bool descending = false;
      if (AcceptKeyword("DESC")) {
        descending = true;
      } else {
        AcceptKeyword("ASC");
      }
      stmt->order_by.push_back({std::move(column), descending});
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseLimit(SelectStatement* stmt) {
    if (Peek().kind != TokenKind::kNumber) {
      return Error("expected LIMIT count");
    }
    const double value = std::strtod(Advance().text.c_str(), nullptr);
    if (value < 0 || value != static_cast<double>(
                                  static_cast<uint64_t>(value))) {
      return Status::InvalidArgument("LIMIT must be a non-negative integer");
    }
    stmt->limit = static_cast<uint64_t>(value);
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlStatement> ParseSql(const std::string& sql) {
  SKYLINE_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<SelectStatement> ParseSelect(const std::string& sql) {
  SKYLINE_ASSIGN_OR_RETURN(SqlStatement stmt, ParseSql(sql));
  if (!std::holds_alternative<SelectStatement>(stmt)) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  return std::get<SelectStatement>(std::move(stmt));
}

}  // namespace skyline
