#ifndef SKYLINE_SQL_PARSER_H_
#define SKYLINE_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace skyline {

/// Parses one statement of the mini dialect (grammar in sql/ast.h).
/// Returns InvalidArgument with offset context on syntax errors.
Result<SelectStatement> ParseSql(const std::string& sql);

}  // namespace skyline

#endif  // SKYLINE_SQL_PARSER_H_
