#ifndef SKYLINE_SQL_PARSER_H_
#define SKYLINE_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace skyline {

/// Parses one statement of the mini dialect (grammar in sql/ast.h):
/// SELECT, INSERT INTO ... VALUES, or DELETE FROM. Returns
/// InvalidArgument with offset context on syntax errors.
Result<SqlStatement> ParseSql(const std::string& sql);

/// Convenience for read-only callers: parses and requires a SELECT.
Result<SelectStatement> ParseSelect(const std::string& sql);

}  // namespace skyline

#endif  // SKYLINE_SQL_PARSER_H_
