#include "storage/column_file.h"

#include <cstring>
#include <limits>

namespace skyline {
namespace {

constexpr char kMagic[8] = {'S', 'K', 'Y', 'C', 'O', 'L', 'F', '1'};
constexpr uint32_t kVersion = 1;

uint64_t Fnv1a(const char* data, size_t size) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
void PutScalar(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool GetScalar(const std::string& in, size_t* pos, T* out) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(out, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

template <typename T>
void PutVector(std::string* out, const std::vector<T>& v) {
  if (!v.empty()) {
    out->append(reinterpret_cast<const char*>(v.data()),
                v.size() * sizeof(T));
  }
}

template <typename T>
bool GetVector(const std::string& in, size_t* pos, size_t count,
               std::vector<T>* out) {
  const size_t bytes = count * sizeof(T);
  if (*pos + bytes > in.size()) return false;
  out->resize(count);
  if (bytes > 0) std::memcpy(out->data(), in.data() + *pos, bytes);
  *pos += bytes;
  return true;
}

void ComputeZoneMaps(ColumnFileColumn* col, uint64_t row_count,
                     uint32_t block_rows, size_t blocks) {
  col->zmin.assign(blocks, std::numeric_limits<int64_t>::max());
  col->zmax.assign(blocks, std::numeric_limits<int64_t>::min());
  for (uint64_t i = 0; i < row_count; ++i) {
    const int64_t key = col->kind == ColumnFileKind::kKeyInt64
                            ? col->data64[i]
                            : static_cast<int64_t>(col->data32[i]);
    const size_t b = static_cast<size_t>(i / block_rows);
    if (key < col->zmin[b]) col->zmin[b] = key;
    if (key > col->zmax[b]) col->zmax[b] = key;
  }
}

Status CorruptColumnFile(const std::string& path, const std::string& what) {
  return Status::Corruption("column file " + path + ": " + what);
}

}  // namespace

Status WriteColumnFile(Env* env, const std::string& path,
                       ColumnFileContents contents) {
  if (contents.block_rows == 0) {
    return Status::InvalidArgument("column file block_rows must be positive");
  }
  const size_t blocks = contents.BlockCount();
  for (auto& col : contents.columns) {
    const size_t have = col.kind == ColumnFileKind::kKeyInt64
                            ? col.data64.size()
                            : col.data32.size();
    if (have != contents.row_count) {
      return Status::InvalidArgument(
          "column file column has " + std::to_string(have) + " keys for " +
          std::to_string(contents.row_count) + " rows");
    }
    if (col.kind == ColumnFileKind::kDictCode &&
        col.dict.size() !=
            static_cast<size_t>(col.dict_entries) * col.raw_width) {
      return Status::InvalidArgument("column file dictionary blob size");
    }
    ComputeZoneMaps(&col, contents.row_count, contents.block_rows, blocks);
  }

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutScalar(&out, kVersion);
  PutScalar(&out, contents.block_rows);
  PutScalar(&out, contents.row_count);
  PutScalar(&out, static_cast<uint32_t>(contents.columns.size()));
  for (const auto& col : contents.columns) {
    PutScalar(&out, static_cast<uint8_t>(col.kind));
    PutScalar(&out, col.raw_width);
    PutScalar(&out, col.dict_entries);
  }
  for (const auto& col : contents.columns) {
    for (size_t b = 0; b < blocks; ++b) PutScalar(&out, col.zmin[b]);
    for (size_t b = 0; b < blocks; ++b) PutScalar(&out, col.zmax[b]);
  }
  for (const auto& col : contents.columns) {
    out.append(col.dict);
  }
  for (const auto& col : contents.columns) {
    if (col.kind == ColumnFileKind::kKeyInt64) {
      PutVector(&out, col.data64);
    } else {
      PutVector(&out, col.data32);
    }
  }
  PutScalar(&out, Fnv1a(out.data(), out.size()));

  std::unique_ptr<WritableFile> file;
  SKYLINE_RETURN_IF_ERROR(env->NewWritableFile(path, &file));
  SKYLINE_RETURN_IF_ERROR(file->Append(out.data(), out.size()));
  return file->Close();
}

Result<ColumnFileContents> ReadColumnFile(Env* env, const std::string& path) {
  std::unique_ptr<RandomAccessFile> file;
  SKYLINE_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &file));
  const uint64_t size = file->Size();
  if (size < sizeof(kMagic) + sizeof(uint64_t)) {
    return CorruptColumnFile(path, "too small");
  }
  file->Hint(RandomAccessFile::AccessPattern::kWillNeed, 0, size);
  std::string raw(size, '\0');
  SKYLINE_RETURN_IF_ERROR(file->Read(0, size, raw.data()));

  uint64_t stored_checksum;
  std::memcpy(&stored_checksum, raw.data() + size - sizeof(uint64_t),
              sizeof(uint64_t));
  if (Fnv1a(raw.data(), size - sizeof(uint64_t)) != stored_checksum) {
    return CorruptColumnFile(path, "checksum mismatch");
  }
  if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    return CorruptColumnFile(path, "bad magic");
  }

  size_t pos = sizeof(kMagic);
  uint32_t version;
  ColumnFileContents contents;
  uint32_t num_columns;
  if (!GetScalar(raw, &pos, &version) ||
      !GetScalar(raw, &pos, &contents.block_rows) ||
      !GetScalar(raw, &pos, &contents.row_count) ||
      !GetScalar(raw, &pos, &num_columns)) {
    return CorruptColumnFile(path, "truncated header");
  }
  if (version != kVersion) {
    return CorruptColumnFile(path,
                             "unsupported version " + std::to_string(version));
  }
  if (contents.block_rows == 0) {
    return CorruptColumnFile(path, "zero block_rows");
  }
  contents.columns.resize(num_columns);
  for (auto& col : contents.columns) {
    uint8_t kind;
    if (!GetScalar(raw, &pos, &kind) || !GetScalar(raw, &pos, &col.raw_width) ||
        !GetScalar(raw, &pos, &col.dict_entries)) {
      return CorruptColumnFile(path, "truncated column header");
    }
    if (kind > static_cast<uint8_t>(ColumnFileKind::kDictCode)) {
      return CorruptColumnFile(path, "unknown column kind");
    }
    col.kind = static_cast<ColumnFileKind>(kind);
    if (col.kind == ColumnFileKind::kDictCode && col.raw_width == 0) {
      return CorruptColumnFile(path, "dictionary column with zero width");
    }
  }
  const size_t blocks = contents.BlockCount();
  for (auto& col : contents.columns) {
    if (!GetVector(raw, &pos, blocks, &col.zmin) ||
        !GetVector(raw, &pos, blocks, &col.zmax)) {
      return CorruptColumnFile(path, "truncated zone maps");
    }
  }
  for (auto& col : contents.columns) {
    const size_t bytes =
        static_cast<size_t>(col.dict_entries) * col.raw_width;
    if (pos + bytes > raw.size()) {
      return CorruptColumnFile(path, "truncated dictionary");
    }
    col.dict.assign(raw.data() + pos, bytes);
    pos += bytes;
  }
  for (auto& col : contents.columns) {
    const bool ok =
        col.kind == ColumnFileKind::kKeyInt64
            ? GetVector(raw, &pos, contents.row_count, &col.data64)
            : GetVector(raw, &pos, contents.row_count, &col.data32);
    if (!ok) return CorruptColumnFile(path, "truncated key data");
  }
  if (pos + sizeof(uint64_t) != raw.size()) {
    return CorruptColumnFile(path, "trailing bytes");
  }
  return contents;
}

}  // namespace skyline
