#ifndef SKYLINE_STORAGE_COLUMN_FILE_H_
#define SKYLINE_STORAGE_COLUMN_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "env/env.h"

namespace skyline {

/// Persistent columnar sidecar of a heap-file table: the order-key image
/// of every column in SoA blocks, with per-block zone maps and (for
/// dictionary columns) the dictionary itself. Written once at table
/// build/save time, then reused by every query — the zone maps that the
/// filter and merge phases prune with no longer need a per-query rebuild.
///
/// The storage layer knows nothing about schemas or skyline specs: a
/// column is just a kind + a vector of canonical *ascending* keys
/// (int32 raw values, int64 raw values, float64 total-order bits, or
/// dictionary codes). Layers above translate Schema columns to these
/// descriptors and apply per-spec MIN/MAX flips at query time.
///
/// On-disk layout (little-endian, versioned, checksummed):
///   magic   "SKYCOLF1"
///   u32     version (1)
///   u32     block_rows
///   u64     row_count
///   u32     num_columns
///   per column: u8 kind, u32 raw_width, u32 dict_entries
///   per column: zone maps, BlockCount i64 zmins then BlockCount i64 zmaxs
///   per column: dictionary blob, dict_entries * raw_width bytes
///   per column: key data, row_count * (4 or 8) bytes
///   u64     FNV-1a checksum of everything above
enum class ColumnFileKind : uint8_t {
  /// Raw int32 values (canonical signed order).
  kKeyInt32 = 0,
  /// int64 keys: raw int64 values or float64 total-order bits.
  kKeyInt64 = 1,
  /// int32 dictionary codes; the dictionary blob holds the values in
  /// code order, raw_width bytes each.
  kDictCode = 2,
};

struct ColumnFileColumn {
  ColumnFileKind kind = ColumnFileKind::kKeyInt32;
  /// Source value width in bytes (string length for kDictCode).
  uint32_t raw_width = 0;
  uint32_t dict_entries = 0;
  /// Exactly one of data32/data64 is populated, by kind.
  std::vector<int32_t> data32;
  std::vector<int64_t> data64;
  /// Code-ordered dictionary values (kDictCode only).
  std::string dict;
  /// Per-block key ranges in canonical ascending order, widened to int64.
  /// Filled by WriteColumnFile; always present after ReadColumnFile.
  std::vector<int64_t> zmin, zmax;
};

struct ColumnFileContents {
  uint32_t block_rows = 64;
  uint64_t row_count = 0;
  std::vector<ColumnFileColumn> columns;

  size_t BlockCount() const {
    return block_rows == 0
               ? 0
               : static_cast<size_t>((row_count + block_rows - 1) /
                                     block_rows);
  }
};

/// Serializes `contents` to `path`, computing the per-block zone maps from
/// the key data (any caller-supplied zmin/zmax are recomputed).
Status WriteColumnFile(Env* env, const std::string& path,
                       ColumnFileContents contents);

/// Reads and validates a column file: magic, version, structural sizes,
/// and the trailing checksum over the whole byte stream. Hints the read
/// as kWillNeed before loading.
Result<ColumnFileContents> ReadColumnFile(Env* env, const std::string& path);

}  // namespace skyline

#endif  // SKYLINE_STORAGE_COLUMN_FILE_H_
