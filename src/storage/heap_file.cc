#include "storage/heap_file.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace skyline {

Result<uint64_t> HeapFileRecordCount(uint64_t file_size, size_t record_size) {
  const uint64_t per_page = RecordsPerPage(record_size);
  const uint64_t full_pages = file_size / kPageSize;
  const uint64_t tail_bytes = file_size % kPageSize;
  if (tail_bytes % record_size != 0) {
    return Status::Corruption("heap file size not a whole number of records");
  }
  return full_pages * per_page + tail_bytes / record_size;
}

uint64_t HeapFilePageCount(uint64_t record_count, size_t record_size) {
  const uint64_t per_page = RecordsPerPage(record_size);
  return (record_count + per_page - 1) / per_page;
}

HeapFileWriter::HeapFileWriter(Env* env, std::string path, size_t record_size,
                               IoStats* stats)
    : env_(env), path_(std::move(path)), stats_(stats), buffer_(record_size) {}

Status HeapFileWriter::Open() { return env_->NewWritableFile(path_, &file_); }

Status HeapFileWriter::Append(const char* record) {
  SKYLINE_CHECK(file_ != nullptr) << "Append before Open on " << path_;
  SKYLINE_CHECK(!finished_) << "Append after Finish on " << path_;
  buffer_.Append(record);
  ++records_written_;
  if (buffer_.full()) {
    return FlushPage(/*pad_to_page_size=*/true);
  }
  return Status::OK();
}

Status HeapFileWriter::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  if (!buffer_.empty()) {
    // The tail page is written unpadded so the record count stays derivable
    // from the file size.
    SKYLINE_RETURN_IF_ERROR(FlushPage(/*pad_to_page_size=*/false));
  }
  if (file_ != nullptr) {
    SKYLINE_RETURN_IF_ERROR(file_->Close());
  }
  return Status::OK();
}

Status HeapFileWriter::FlushPage(bool pad_to_page_size) {
  const size_t bytes = pad_to_page_size ? kPageSize : buffer_.payload_bytes();
  // Zero the padding so file contents are deterministic.
  if (pad_to_page_size && buffer_.payload_bytes() < kPageSize) {
    std::memset(buffer_.mutable_data() + buffer_.payload_bytes(), 0,
                kPageSize - buffer_.payload_bytes());
  }
  SKYLINE_RETURN_IF_ERROR(file_->Append(buffer_.data(), bytes));
  buffer_.Clear();
  ++pages_flushed_;
  if (stats_ != nullptr) ++stats_->pages_written;
  return Status::OK();
}

HeapFileReader::HeapFileReader(Env* env, std::string path, size_t record_size,
                               IoStats* stats)
    : env_(env), path_(std::move(path)), stats_(stats), page_(record_size) {}

Status HeapFileReader::Open() {
  SKYLINE_RETURN_IF_ERROR(env_->NewRandomAccessFile(path_, &file_));
  // Heap scans are front-to-back page reads; let the OS read ahead.
  file_->Hint(RandomAccessFile::AccessPattern::kSequential, 0, 0);
  file_size_ = file_->Size();
  SKYLINE_ASSIGN_OR_RETURN(record_count_,
                           HeapFileRecordCount(file_size_, record_size()));
  page_count_ = HeapFilePageCount(record_count_, record_size());
  opened_ = true;
  return Status::OK();
}

const char* HeapFileReader::Next() {
  SKYLINE_CHECK(opened_) << "Next before Open on " << path_;
  if (!status_.ok()) return nullptr;
  if (record_index_ >= page_.size()) {
    if (!LoadNextPage()) return nullptr;
  }
  const char* record = page_.RecordAt(record_index_);
  ++record_index_;
  ++records_returned_;
  return record;
}

Status HeapFileReader::SeekToRecord(uint64_t record) {
  SKYLINE_CHECK(opened_) << "SeekToRecord before Open on " << path_;
  SKYLINE_RETURN_IF_ERROR(status_);
  if (record > record_count_) {
    return Status::InvalidArgument("seek past end of " + path_);
  }
  page_.set_size(0);
  record_index_ = 0;
  if (record == record_count_) {
    page_index_ = page_count_;
    return Status::OK();
  }
  const uint64_t per_page = RecordsPerPage(record_size());
  page_index_ = record / per_page;
  if (!LoadNextPage()) {
    return status_.ok() ? Status::OutOfRange("seek past end of " + path_)
                        : status_;
  }
  record_index_ = static_cast<size_t>(record % per_page);
  return Status::OK();
}

bool HeapFileReader::LoadNextPage() {
  if (page_index_ >= page_count_) return false;
  const uint64_t offset = page_index_ * kPageSize;
  const uint64_t remaining_records =
      record_count_ - page_index_ * RecordsPerPage(record_size());
  const size_t records_on_page = static_cast<size_t>(
      std::min<uint64_t>(remaining_records, RecordsPerPage(record_size())));
  const uint64_t bytes_left = file_size_ - offset;
  const size_t bytes =
      static_cast<size_t>(std::min<uint64_t>(kPageSize, bytes_left));
  Status st = file_->Read(offset, bytes, page_.mutable_data());
  if (!st.ok()) {
    status_ = st;
    return false;
  }
  page_.set_size(records_on_page);
  record_index_ = 0;
  ++page_index_;
  if (stats_ != nullptr) ++stats_->pages_read;
  return true;
}

}  // namespace skyline
