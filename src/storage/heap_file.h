#ifndef SKYLINE_STORAGE_HEAP_FILE_H_
#define SKYLINE_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "env/env.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace skyline {

/// Append-only writer of a paged heap file of fixed-width records.
///
/// Layout: every page except possibly the last occupies exactly kPageSize
/// bytes and holds RecordsPerPage(record_size) records; the final page is
/// written unpadded (payload bytes only), which makes the record count
/// recoverable from the file size alone.
///
/// Each flushed page increments `stats->pages_written` (if stats given).
class HeapFileWriter {
 public:
  /// Creates (truncating) `path` in `env`. `stats` may be null.
  HeapFileWriter(Env* env, std::string path, size_t record_size,
                 IoStats* stats);

  HeapFileWriter(const HeapFileWriter&) = delete;
  HeapFileWriter& operator=(const HeapFileWriter&) = delete;

  /// Opens the underlying file. Must be called (and succeed) before Append.
  Status Open();

  /// Appends one record of record_size bytes.
  Status Append(const char* record);

  /// Flushes the partial tail page and closes the file. Idempotent.
  Status Finish();

  uint64_t records_written() const { return records_written_; }

  /// Pages flushed so far (including the tail page once Finish runs).
  uint64_t pages_flushed() const { return pages_flushed_; }

  const std::string& path() const { return path_; }
  size_t record_size() const { return buffer_.record_size(); }

 private:
  Status FlushPage(bool pad_to_page_size);

  Env* env_;
  std::string path_;
  IoStats* stats_;
  Page buffer_;
  std::unique_ptr<WritableFile> file_;
  uint64_t records_written_ = 0;
  uint64_t pages_flushed_ = 0;
  bool finished_ = false;
};

/// Sequential page-at-a-time reader over a heap file written by
/// HeapFileWriter. Each page fetch increments `stats->pages_read`.
class HeapFileReader {
 public:
  /// `stats` may be null.
  HeapFileReader(Env* env, std::string path, size_t record_size,
                 IoStats* stats);

  HeapFileReader(const HeapFileReader&) = delete;
  HeapFileReader& operator=(const HeapFileReader&) = delete;

  /// Opens the file and computes the record count from its size.
  Status Open();

  /// Returns a pointer to the next record, or nullptr at end-of-stream or on
  /// error (check status()). The pointer is valid until the next call.
  const char* Next();

  /// Repositions the stream so the next Next() returns record `record`
  /// (0-based). Pages are fixed-size, so this is a single page fetch, which
  /// lets the block-parallel readers jump straight to their partition.
  /// `record` == record_count() positions at end-of-stream.
  Status SeekToRecord(uint64_t record);

  /// OK unless a read failed.
  const Status& status() const { return status_; }

  /// Total records in the file (valid after Open).
  uint64_t record_count() const { return record_count_; }

  /// Total pages in the file (valid after Open).
  uint64_t page_count() const { return page_count_; }

  /// Records returned by Next() so far.
  uint64_t records_returned() const { return records_returned_; }

  const std::string& path() const { return path_; }
  size_t record_size() const { return page_.record_size(); }

 private:
  /// Loads page `page_index_` into the buffer; false at end or on error.
  bool LoadNextPage();

  Env* env_;
  std::string path_;
  IoStats* stats_;
  Page page_;
  std::unique_ptr<RandomAccessFile> file_;
  Status status_;
  uint64_t file_size_ = 0;
  uint64_t record_count_ = 0;
  uint64_t page_count_ = 0;
  uint64_t page_index_ = 0;   // next page to load
  size_t record_index_ = 0;   // next record within the loaded page
  uint64_t records_returned_ = 0;
  bool opened_ = false;
};

/// Computes the number of records in a heap file of `file_size` bytes with
/// the HeapFileWriter layout. Returns Corruption on an inconsistent size.
Result<uint64_t> HeapFileRecordCount(uint64_t file_size, size_t record_size);

/// Number of pages a heap file with `record_count` records occupies.
uint64_t HeapFilePageCount(uint64_t record_count, size_t record_size);

}  // namespace skyline

#endif  // SKYLINE_STORAGE_HEAP_FILE_H_
