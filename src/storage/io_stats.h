#ifndef SKYLINE_STORAGE_IO_STATS_H_
#define SKYLINE_STORAGE_IO_STATS_H_

#include <cstdint>

namespace skyline {

/// Logical page-I/O counters. The paper's I/O figures count 4 KiB pages
/// written to (and read back from) temporary files, excluding the initial
/// table scan; algorithms attach one IoStats to every HeapFile they touch
/// and report deltas.
struct IoStats {
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;

  uint64_t TotalPages() const { return pages_read + pages_written; }

  void Reset() {
    pages_read = 0;
    pages_written = 0;
  }

  IoStats& operator+=(const IoStats& other) {
    pages_read += other.pages_read;
    pages_written += other.pages_written;
    return *this;
  }
};

inline IoStats operator-(const IoStats& a, const IoStats& b) {
  IoStats d;
  d.pages_read = a.pages_read - b.pages_read;
  d.pages_written = a.pages_written - b.pages_written;
  return d;
}

}  // namespace skyline

#endif  // SKYLINE_STORAGE_IO_STATS_H_
