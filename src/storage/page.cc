#include "storage/page.h"

#include <cstring>

namespace skyline {

Page::Page(size_t record_size) : record_size_(record_size) {
  SKYLINE_CHECK_GT(record_size, 0u);
  SKYLINE_CHECK_LE(record_size, kPageSize);
}

void Page::Append(const char* record) {
  SKYLINE_CHECK(!full()) << "page overflow";
  std::memcpy(data_ + count_ * record_size_, record, record_size_);
  ++count_;
}

const char* Page::RecordAt(size_t i) const {
  SKYLINE_CHECK_LT(i, count_);
  return data_ + i * record_size_;
}

char* Page::MutableRecordAt(size_t i) {
  SKYLINE_CHECK_LT(i, count_);
  return data_ + i * record_size_;
}

void Page::set_size(size_t count) {
  SKYLINE_CHECK_LE(count, capacity());
  count_ = count;
}

}  // namespace skyline
