#ifndef SKYLINE_STORAGE_PAGE_H_
#define SKYLINE_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>

#include "common/logging.h"

namespace skyline {

/// Disk page geometry shared by the storage layer and the algorithms'
/// window-size accounting. Matches the paper: 4096-byte pages, so 40
/// 100-byte tuples (or ~100 projected 40-byte window entries) per page.
inline constexpr size_t kPageSize = 4096;

/// Number of fixed-width records of `record_size` bytes that fit on a page.
constexpr size_t RecordsPerPage(size_t record_size) {
  return record_size == 0 ? 0 : kPageSize / record_size;
}

/// A fixed-size in-memory page buffer holding densely packed fixed-width
/// records. Pages do not own metadata: the containing HeapFile tracks record
/// counts; a Page is just the unit of transfer and of buffer accounting.
class Page {
 public:
  /// Creates a page for records of `record_size` bytes. `record_size` must
  /// be in (0, kPageSize].
  explicit Page(size_t record_size);

  Page(const Page&) = default;
  Page& operator=(const Page&) = default;
  Page(Page&&) noexcept = default;
  Page& operator=(Page&&) noexcept = default;

  size_t record_size() const { return record_size_; }

  /// Maximum records this page can hold.
  size_t capacity() const { return RecordsPerPage(record_size_); }

  /// Records currently stored.
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == capacity(); }

  /// Appends one record (exactly record_size() bytes). Page must not be full.
  void Append(const char* record);

  /// Pointer to record `i` (0-based, i < size()).
  const char* RecordAt(size_t i) const;
  char* MutableRecordAt(size_t i);

  /// Discards all records.
  void Clear() { count_ = 0; }

  /// Raw page buffer (kPageSize bytes); used by HeapFile for transfer.
  const char* data() const { return data_; }
  char* mutable_data() { return data_; }

  /// Bytes actually occupied by records (count * record_size).
  size_t payload_bytes() const { return count_ * record_size_; }

  /// Resets the record count after the buffer has been filled externally
  /// (i.e., after a page-granularity read). `count` must be <= capacity().
  void set_size(size_t count);

 private:
  size_t record_size_;
  size_t count_ = 0;
  alignas(8) char data_[kPageSize];
};

}  // namespace skyline

#endif  // SKYLINE_STORAGE_PAGE_H_
