#include "storage/temp_file_manager.h"

#include <algorithm>

namespace skyline {

TempFileManager::TempFileManager(Env* env, std::string prefix)
    : env_(env), prefix_(std::move(prefix)) {}

TempFileManager::~TempFileManager() { DeleteAll(); }

std::string TempFileManager::Allocate(const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string path =
      prefix_ + "_" + tag + "_" + std::to_string(next_id_++) + ".heap";
  paths_.push_back(path);
  return path;
}

void TempFileManager::Delete(const std::string& path) {
  if (env_->FileExists(path)) {
    env_->DeleteFile(path).ok();  // best effort
  }
  std::lock_guard<std::mutex> lock(mu_);
  paths_.erase(std::remove(paths_.begin(), paths_.end(), path), paths_.end());
}

void TempFileManager::DeleteAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& path : paths_) {
    if (env_->FileExists(path)) {
      env_->DeleteFile(path).ok();  // best effort
    }
  }
  paths_.clear();
}

}  // namespace skyline
