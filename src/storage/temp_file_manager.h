#ifndef SKYLINE_STORAGE_TEMP_FILE_MANAGER_H_
#define SKYLINE_STORAGE_TEMP_FILE_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "env/env.h"

namespace skyline {

/// Hands out unique temp-file paths within an Env and deletes every file it
/// handed out when destroyed (or on Release). The multi-pass algorithms and
/// the external sorter use this for their intermediate heap files.
///
/// Allocate/Delete are thread-safe, so concurrent sort runs and parallel
/// SFS workers can share one manager. Destruction must not race with use.
class TempFileManager {
 public:
  /// `prefix` namespaces the generated paths (e.g. "/tmp/skyline" for a
  /// PosixEnv, any string for a MemEnv).
  TempFileManager(Env* env, std::string prefix);

  /// Deletes all allocated files still present in the env.
  ~TempFileManager();

  TempFileManager(const TempFileManager&) = delete;
  TempFileManager& operator=(const TempFileManager&) = delete;

  /// Returns a fresh unique path; `tag` is embedded for debuggability.
  std::string Allocate(const std::string& tag);

  /// Deletes one allocated file now (ignores NotFound).
  void Delete(const std::string& path);

  /// Deletes all allocated files now.
  void DeleteAll();

  Env* env() const { return env_; }
  size_t allocated_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return paths_.size();
  }

 private:
  Env* env_;
  std::string prefix_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 0;
  std::vector<std::string> paths_;
};

}  // namespace skyline

#endif  // SKYLINE_STORAGE_TEMP_FILE_MANAGER_H_
