#ifndef SKYLINE_STORAGE_TEMP_FILE_MANAGER_H_
#define SKYLINE_STORAGE_TEMP_FILE_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "env/env.h"

namespace skyline {

/// Hands out unique temp-file paths within an Env and deletes every file it
/// handed out when destroyed (or on Release). The multi-pass algorithms and
/// the external sorter use this for their intermediate heap files.
class TempFileManager {
 public:
  /// `prefix` namespaces the generated paths (e.g. "/tmp/skyline" for a
  /// PosixEnv, any string for a MemEnv).
  TempFileManager(Env* env, std::string prefix);

  /// Deletes all allocated files still present in the env.
  ~TempFileManager();

  TempFileManager(const TempFileManager&) = delete;
  TempFileManager& operator=(const TempFileManager&) = delete;

  /// Returns a fresh unique path; `tag` is embedded for debuggability.
  std::string Allocate(const std::string& tag);

  /// Deletes one allocated file now (ignores NotFound).
  void Delete(const std::string& path);

  /// Deletes all allocated files now.
  void DeleteAll();

  Env* env() const { return env_; }
  size_t allocated_count() const { return paths_.size(); }

 private:
  Env* env_;
  std::string prefix_;
  uint64_t next_id_ = 0;
  std::vector<std::string> paths_;
};

}  // namespace skyline

#endif  // SKYLINE_STORAGE_TEMP_FILE_MANAGER_H_
