#include "core/bbs.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/compute_skyline.h"
#include "core/cost_model.h"
#include "core/dominance_batch.h"
#include "gtest/gtest.h"
#include "index/block_index.h"
#include "relation/column_store.h"
#include "relation/generator.h"
#include "sql/executor.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

/// Generates a table, persists both sidecars (column file + z-order
/// index), and registers it in the catalog.
Result<Table> MakeIndexedTable(Env* env, const std::string& path,
                               GeneratorOptions options) {
  SKYLINE_ASSIGN_OR_RETURN(Table table, GenerateTable(env, path, options));
  SKYLINE_RETURN_IF_ERROR(WriteTableColumnFile(table));
  SKYLINE_RETURN_IF_ERROR(WriteTableBlockIndex(table));
  return table;
}

/// Runs `sql` with the given algorithm and returns the raw output rows in
/// emission order — byte-exact, so equality means byte-identical output.
std::vector<std::string> RunRows(const Catalog& catalog, const std::string& sql,
                                 SkylineAlgorithm algorithm) {
  SqlOptions options;
  options.algorithm = algorithm;
  std::vector<std::string> rows;
  Status st = ExecuteSql(catalog, sql, options, [&](const RowView& row) {
    rows.emplace_back(row.data(), row.schema().row_width());
    return Status::OK();
  });
  SKYLINE_CHECK(st.ok()) << st.ToString();
  return rows;
}

class BbsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    TableZoneCache::Instance().Clear();
  }
  void TearDown() override { TableZoneCache::Instance().Clear(); }

  std::unique_ptr<Env> env_;
};

constexpr char kFiveDimSkyline[] =
    "SKYLINE OF a0 MAX, a1 MIN, a2 MAX, a3 MIN, a4 MAX";

TEST_F(BbsTest, SqlOutputByteIdenticalToSfsAcrossDistributions) {
  const struct {
    Distribution distribution;
    const char* name;
  } kCases[] = {
      {Distribution::kIndependent, "ind"},
      {Distribution::kCorrelated, "cor"},
      {Distribution::kAntiCorrelated, "anti"},
  };
  for (const auto& c : kCases) {
    GeneratorOptions options;
    options.num_rows = 3000;
    options.num_attributes = 5;
    options.distribution = c.distribution;
    options.seed = 101;
    ASSERT_OK_AND_ASSIGN(
        Table table,
        MakeIndexedTable(env_.get(), std::string("t_") + c.name, options));
    Catalog catalog(env_.get());
    catalog.Register("T", &table);

    const std::string sql = std::string("SELECT * FROM T ") + kFiveDimSkyline;
    const auto sfs = RunRows(catalog, sql, SkylineAlgorithm::kSfs);
    const auto bbs = RunRows(catalog, sql, SkylineAlgorithm::kBbs);
    EXPECT_EQ(bbs, sfs) << c.name;
    EXPECT_FALSE(bbs.empty()) << c.name;
    TableZoneCache::Instance().Clear();
  }
}

TEST_F(BbsTest, MixedTypeSpecMatchesSfs) {
  GeneratorOptions options;
  options.num_rows = 2000;
  options.num_attributes = 5;
  options.attribute_types = {ColumnType::kInt64, ColumnType::kFloat64,
                             ColumnType::kInt32, ColumnType::kFloat64,
                             ColumnType::kInt32};
  options.seed = 77;
  ASSERT_OK_AND_ASSIGN(Table table,
                       MakeIndexedTable(env_.get(), "mixed", options));
  Catalog catalog(env_.get());
  catalog.Register("T", &table);

  const std::string sql = std::string("SELECT * FROM T ") + kFiveDimSkyline;
  EXPECT_EQ(RunRows(catalog, sql, SkylineAlgorithm::kBbs),
            RunRows(catalog, sql, SkylineAlgorithm::kSfs));
}

TEST_F(BbsTest, FallsBackWhenColumnarKernelUnavailable) {
  GeneratorOptions options;
  options.num_rows = 1500;
  options.num_attributes = 4;
  options.seed = 5;
  ASSERT_OK_AND_ASSIGN(Table table,
                       MakeIndexedTable(env_.get(), "rowpath", options));
  Catalog catalog(env_.get());
  catalog.Register("T", &table);
  const std::string sql =
      "SELECT * FROM T SKYLINE OF a0 MAX, a1 MIN, a2 MAX, a3 MIN";

  const auto expected = RunRows(catalog, sql, SkylineAlgorithm::kSfs);
  SetForceRowDominancePath(true);
  const auto forced = RunRows(catalog, sql, SkylineAlgorithm::kBbs);
  SetForceRowDominancePath(false);
  EXPECT_EQ(forced, expected);
}

TEST_F(BbsTest, DiffSpecDegradesToSfs) {
  GeneratorOptions options;
  options.num_rows = 1500;
  options.num_attributes = 3;
  options.payload_cardinality = 4;  // duplicates make payload DIFF-able
  options.seed = 9;
  ASSERT_OK_AND_ASSIGN(Table table,
                       MakeIndexedTable(env_.get(), "diffed", options));
  Catalog catalog(env_.get());
  catalog.Register("T", &table);
  const std::string sql =
      "SELECT * FROM T SKYLINE OF a0 MAX, a1 MIN, payload DIFF";
  EXPECT_EQ(RunRows(catalog, sql, SkylineAlgorithm::kBbs),
            RunRows(catalog, sql, SkylineAlgorithm::kSfs));
}

TEST_F(BbsTest, ConstrainedSkylineMatchesSfsAndOracle) {
  GeneratorOptions options;
  options.num_rows = 4000;
  options.num_attributes = 4;
  options.seed = 23;
  ASSERT_OK_AND_ASSIGN(Table table,
                       MakeIndexedTable(env_.get(), "boxed", options));
  Catalog catalog(env_.get());
  catalog.Register("T", &table);

  const std::string where = "WHERE a0 >= -500000000 AND a1 < 1200000000 ";
  const std::string sql = "SELECT * FROM T " + where +
                          "SKYLINE OF a0 MAX, a1 MIN, a2 MAX, a3 MIN";
  const auto sfs = RunRows(catalog, sql, SkylineAlgorithm::kSfs);
  const auto bbs = RunRows(catalog, sql, SkylineAlgorithm::kBbs);
  EXPECT_EQ(bbs, sfs);
  ASSERT_FALSE(bbs.empty());

  // Independent oracle: materialize the WHERE-only rows (no skyline
  // clause → the predicates run as a plain row filter, no pushdown) and
  // take their naive skyline.
  const auto filtered =
      RunRows(catalog, "SELECT * FROM T " + where, SkylineAlgorithm::kSfs);
  TableBuilder builder(env_.get(), "boxed_filtered", table.schema());
  ASSERT_OK(builder.Open());
  for (const auto& row : filtered) ASSERT_OK(builder.AppendRaw(row.data()));
  ASSERT_OK_AND_ASSIGN(Table filtered_table, builder.Finish());
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(table.schema(), {{"a0", Directive::kMax},
                                         {"a1", Directive::kMin},
                                         {"a2", Directive::kMax},
                                         {"a3", Directive::kMin}}));
  const auto oracle = OracleSkylineMultiset(filtered_table, spec);
  std::multiset<std::string> got(bbs.begin(), bbs.end());
  EXPECT_EQ(got, oracle);
}

TEST_F(BbsTest, EmptyConstraintBoxYieldsNoRows) {
  GeneratorOptions options;
  options.num_rows = 500;
  options.num_attributes = 3;
  options.seed = 3;
  ASSERT_OK_AND_ASSIGN(Table table,
                       MakeIndexedTable(env_.get(), "emptybox", options));
  Catalog catalog(env_.get());
  catalog.Register("T", &table);
  // No int32 satisfies a0 < -3e9: the pushed box is empty.
  const std::string sql = "SELECT * FROM T WHERE a0 < -3000000000 "
                          "SKYLINE OF a0 MAX, a1 MIN, a2 MAX";
  EXPECT_TRUE(RunRows(catalog, sql, SkylineAlgorithm::kBbs).empty());
  EXPECT_TRUE(RunRows(catalog, sql, SkylineAlgorithm::kSfs).empty());
}

TEST_F(BbsTest, CorruptIndexSidecarDegradesToScan) {
  GeneratorOptions options;
  options.num_rows = 2000;
  options.num_attributes = 4;
  options.seed = 13;
  ASSERT_OK_AND_ASSIGN(Table table,
                       MakeIndexedTable(env_.get(), "corrupt", options));
  Catalog catalog(env_.get());
  catalog.Register("T", &table);
  const std::string sql =
      "SELECT * FROM T SKYLINE OF a0 MAX, a1 MIN, a2 MAX, a3 MIN";
  const auto expected = RunRows(catalog, sql, SkylineAlgorithm::kSfs);

  // Truncate the sidecar to garbage; kBbs must degrade to the scan path
  // (the size stamp in the cache key also invalidates any cached zones).
  const std::string index_path = BlockIndexPathFor(table.path());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile(index_path, &file).ok());
  ASSERT_TRUE(file->Append("SKYZIDX1 not really", 19).ok());
  ASSERT_TRUE(file->Close().ok());

  EXPECT_EQ(RunRows(catalog, sql, SkylineAlgorithm::kBbs), expected);
}

TEST_F(BbsTest, ZOrderClusteringPreservesRowsAndOutput) {
  GeneratorOptions options;
  options.num_rows = 3000;
  options.num_attributes = 4;
  options.seed = 31;
  ASSERT_OK_AND_ASSIGN(Table raw,
                       GenerateTable(env_.get(), "precluster", options));
  ASSERT_OK_AND_ASSIGN(Table table,
                       ClusterTableZOrder(raw, "clustered"));
  // Clustering is a permutation: same multiset of rows.
  const auto raw_bytes = ReadAll(raw);
  const auto clustered_bytes = ReadAll(table);
  EXPECT_EQ(RowMultiset(clustered_bytes.data(), table.row_count(),
                        table.schema().row_width()),
            RowMultiset(raw_bytes.data(), raw.row_count(),
                        raw.schema().row_width()));

  // And the clustered table serves BBS byte-identically to SFS.
  ASSERT_OK(WriteTableColumnFile(table));
  ASSERT_OK(WriteTableBlockIndex(table));
  Catalog catalog(env_.get());
  catalog.Register("T", &table);
  const std::string sql =
      "SELECT * FROM T SKYLINE OF a0 MAX, a1 MIN, a2 MAX, a3 MIN";
  EXPECT_EQ(RunRows(catalog, sql, SkylineAlgorithm::kBbs),
            RunRows(catalog, sql, SkylineAlgorithm::kSfs));
}

TEST_F(BbsTest, CorrelatedMillionRowScanAvoidance) {
  // The acceptance bar: on 1M x 5d correlated data, BBS over a z-order
  // clustered table must read at most 10% of the column-file blocks
  // (>= 90% skipped) and still produce byte-identical output to full-scan
  // SFS over the same table.
  GeneratorOptions options;
  options.num_rows = 1'000'000;
  options.num_attributes = 5;
  options.payload_bytes = 0;
  options.distribution = Distribution::kCorrelated;
  options.seed = 4242;
  ASSERT_OK_AND_ASSIGN(Table raw,
                       GenerateTable(env_.get(), "million_raw", options));
  ASSERT_OK_AND_ASSIGN(Table table, ClusterTableZOrder(raw, "million"));
  ASSERT_OK(WriteTableColumnFile(table));
  ASSERT_OK(WriteTableBlockIndex(table));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(table.schema(), {{"a0", Directive::kMax},
                                         {"a1", Directive::kMax},
                                         {"a2", Directive::kMax},
                                         {"a3", Directive::kMax},
                                         {"a4", Directive::kMax}}));

  // The cost model must choose BBS here.
  const SkylineAccessChoice choice = ChooseSkylineAccess(table, spec, true);
  EXPECT_EQ(choice.path, SkylineAccessPath::kBbs)
      << "estimated " << choice.estimated_skyline << " vs threshold "
      << choice.bbs_threshold;

  SkylineRunStats sfs_stats;
  ASSERT_OK_AND_ASSIGN(
      Table sfs_result,
      ComputeSkyline(SkylineAlgorithm::kSfs, table, spec,
                     ExecContext(), "million_sfs", &sfs_stats));
  SkylineRunStats bbs_stats;
  ASSERT_OK_AND_ASSIGN(
      Table bbs_result,
      ComputeSkyline(SkylineAlgorithm::kAuto, table, spec,
                     ExecContext(), "million_bbs", &bbs_stats));

  // kAuto actually took the index path...
  EXPECT_GT(bbs_stats.index_nodes_visited, 0u);
  EXPECT_GT(bbs_stats.heap_peak, 0u);
  // ...read at most 10% of the blocks...
  const uint64_t total_blocks = (table.row_count() + 63) / 64;
  EXPECT_GE(bbs_stats.index_blocks_skipped,
            (total_blocks * 9 + 9) / 10)
      << "skipped " << bbs_stats.index_blocks_skipped << " of "
      << total_blocks;
  // ...and emitted byte-identical output.
  EXPECT_EQ(ReadAll(bbs_result), ReadAll(sfs_result));
  EXPECT_EQ(bbs_result.row_count(), sfs_result.row_count());
}

TEST_F(BbsTest, AntiCorrelatedDataKeepsSfs) {
  GeneratorOptions options;
  options.num_rows = 50'000;
  options.num_attributes = 5;
  options.payload_bytes = 0;
  options.distribution = Distribution::kAntiCorrelated;
  options.seed = 4242;
  ASSERT_OK_AND_ASSIGN(Table table,
                       MakeIndexedTable(env_.get(), "anti", options));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(table.schema(), {{"a0", Directive::kMax},
                                         {"a1", Directive::kMax},
                                         {"a2", Directive::kMax},
                                         {"a3", Directive::kMax},
                                         {"a4", Directive::kMax}}));
  const SkylineAccessChoice choice = ChooseSkylineAccess(table, spec, true);
  EXPECT_EQ(choice.path, SkylineAccessPath::kSfs)
      << "estimated " << choice.estimated_skyline << " vs threshold "
      << choice.bbs_threshold;

  // kAuto consequently runs the scan: no index counters move.
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(
      Table result, ComputeSkyline(SkylineAlgorithm::kAuto, table, spec,
                                   ExecContext(), "anti_out", &stats));
  EXPECT_EQ(stats.index_nodes_visited, 0u);
  EXPECT_EQ(RowMultiset(ReadAll(result).data(), result.row_count(),
                        table.schema().row_width()),
            OracleSkylineMultiset(table, spec));
}

}  // namespace
}  // namespace skyline
