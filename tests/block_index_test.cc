#include "index/block_index.h"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "relation/column_store.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeUniformTable;

std::string ReadWholeFile(Env* env, const std::string& path) {
  std::unique_ptr<RandomAccessFile> file;
  EXPECT_TRUE(env->NewRandomAccessFile(path, &file).ok());
  std::string bytes(file->Size(), '\0');
  EXPECT_TRUE(file->Read(0, bytes.size(), bytes.data()).ok());
  return bytes;
}

void WriteWholeFile(Env* env, const std::string& path,
                    const std::string& bytes) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile(path, &file).ok());
  ASSERT_TRUE(file->Append(bytes.data(), bytes.size()).ok());
  ASSERT_TRUE(file->Close().ok());
}

/// Synthetic zone maps: `blocks` blocks over two numeric columns with
/// easily recognizable corners (block b spans [b*10, b*10+9] on column 0
/// and descends on column 1).
struct SyntheticZones {
  std::vector<int64_t> zmin0, zmax0, zmin1, zmax1;
  std::vector<BlockIndexColumnZones> views;

  explicit SyntheticZones(size_t blocks) {
    for (size_t b = 0; b < blocks; ++b) {
      zmin0.push_back(static_cast<int64_t>(b) * 10);
      zmax0.push_back(static_cast<int64_t>(b) * 10 + 9);
      zmin1.push_back(static_cast<int64_t>(blocks - b) * 100);
      zmax1.push_back(static_cast<int64_t>(blocks - b) * 100 + 50);
    }
    views.push_back({&zmin0, &zmax0, true});
    views.push_back({&zmin1, &zmax1, true});
  }
};

TEST(BlockIndex, BuildAggregatesCornersBottomUp) {
  constexpr size_t kBlocks = 100;
  SyntheticZones zones(kBlocks);
  ASSERT_OK_AND_ASSIGN(
      BlockSkylineIndex index,
      BuildBlockIndex(64, kBlocks * 64 - 3, zones.views, /*fanout=*/4));

  EXPECT_EQ(index.leaf_count(), kBlocks);
  ASSERT_FALSE(index.levels.empty());
  // leaf_blocks is a permutation of every block id.
  std::vector<uint32_t> sorted = index.leaf_blocks;
  std::sort(sorted.begin(), sorted.end());
  for (size_t b = 0; b < kBlocks; ++b) EXPECT_EQ(sorted[b], b);

  // Level 0 nodes cover fanout-sized leaf slots; their corners must be
  // the exact envelope of the covered blocks' zones.
  const auto& level0 = index.levels[0];
  const size_t nodes0 = index.LevelNodeCount(0);
  ASSERT_EQ(nodes0, (kBlocks + 3) / 4);
  for (size_t n = 0; n < nodes0; ++n) {
    int64_t lo0 = std::numeric_limits<int64_t>::max();
    int64_t hi0 = std::numeric_limits<int64_t>::min();
    for (size_t slot = n * 4; slot < std::min<size_t>((n + 1) * 4, kBlocks);
         ++slot) {
      const uint32_t b = index.leaf_blocks[slot];
      lo0 = std::min(lo0, zones.zmin0[b]);
      hi0 = std::max(hi0, zones.zmax0[b]);
    }
    EXPECT_EQ(level0.zmin[n * 2 + 0], lo0) << n;
    EXPECT_EQ(level0.zmax[n * 2 + 0], hi0) << n;
  }

  // The root level's envelope is the global one.
  const auto& root = index.levels.back();
  const size_t root_nodes = index.LevelNodeCount(index.levels.size() - 1);
  ASSERT_LE(root_nodes, 4u);
  int64_t root_min = std::numeric_limits<int64_t>::max();
  int64_t root_max = std::numeric_limits<int64_t>::min();
  for (size_t n = 0; n < root_nodes; ++n) {
    root_min = std::min(root_min, root.zmin[n * 2 + 0]);
    root_max = std::max(root_max, root.zmax[n * 2 + 0]);
  }
  EXPECT_EQ(root_min, 0);
  EXPECT_EQ(root_max, static_cast<int64_t>(kBlocks - 1) * 10 + 9);
}

TEST(BlockIndex, BuildIsDeterministic) {
  SyntheticZones zones(50);
  ASSERT_OK_AND_ASSIGN(BlockSkylineIndex a,
                       BuildBlockIndex(64, 50 * 64, zones.views));
  ASSERT_OK_AND_ASSIGN(BlockSkylineIndex b,
                       BuildBlockIndex(64, 50 * 64, zones.views));
  EXPECT_EQ(a.leaf_blocks, b.leaf_blocks);
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (size_t l = 0; l < a.levels.size(); ++l) {
    EXPECT_EQ(a.levels[l].zmin, b.levels[l].zmin);
    EXPECT_EQ(a.levels[l].zmax, b.levels[l].zmax);
  }
}

TEST(BlockIndex, RejectsMismatchedZoneVectors) {
  SyntheticZones zones(10);
  // Zone vectors shorter than the block count cannot index every block.
  EXPECT_FALSE(BuildBlockIndex(64, 20 * 64, zones.views).ok());
  EXPECT_FALSE(BuildBlockIndex(0, 64, zones.views).ok());
  EXPECT_FALSE(BuildBlockIndex(64, 10 * 64, {}).ok());
  EXPECT_FALSE(BuildBlockIndex(64, 10 * 64, zones.views, /*fanout=*/1).ok());
}

TEST(BlockIndex, FileRoundTrip) {
  auto env = NewMemEnv();
  SyntheticZones zones(33);
  ASSERT_OK_AND_ASSIGN(BlockSkylineIndex index,
                       BuildBlockIndex(64, 33 * 64 - 5, zones.views));
  ASSERT_OK(WriteBlockIndexFile(env.get(), "t.zidx", index));
  ASSERT_OK_AND_ASSIGN(BlockSkylineIndex read,
                       ReadBlockIndexFile(env.get(), "t.zidx"));
  EXPECT_EQ(read.block_rows, index.block_rows);
  EXPECT_EQ(read.row_count, index.row_count);
  EXPECT_EQ(read.num_columns, index.num_columns);
  EXPECT_EQ(read.fanout, index.fanout);
  EXPECT_EQ(read.leaf_blocks, index.leaf_blocks);
  ASSERT_EQ(read.levels.size(), index.levels.size());
  for (size_t l = 0; l < read.levels.size(); ++l) {
    EXPECT_EQ(read.levels[l].zmin, index.levels[l].zmin);
    EXPECT_EQ(read.levels[l].zmax, index.levels[l].zmax);
  }
}

TEST(BlockIndex, ReadRejectsCorruptionTruncationAndBadPermutation) {
  auto env = NewMemEnv();
  SyntheticZones zones(20);
  ASSERT_OK_AND_ASSIGN(BlockSkylineIndex index,
                       BuildBlockIndex(64, 20 * 64, zones.views));
  ASSERT_OK(WriteBlockIndexFile(env.get(), "t.zidx", index));
  const std::string good = ReadWholeFile(env.get(), "t.zidx");

  // Flip one byte anywhere: the checksum rejects it.
  for (size_t pos : {size_t{0}, good.size() / 2, good.size() - 1}) {
    std::string bad = good;
    bad[pos] ^= 0x40;
    WriteWholeFile(env.get(), "bad.zidx", bad);
    EXPECT_FALSE(ReadBlockIndexFile(env.get(), "bad.zidx").ok()) << pos;
  }

  // Truncations at every structural boundary fail cleanly.
  for (size_t keep : {size_t{0}, size_t{4}, size_t{30}, good.size() / 2,
                      good.size() - 1}) {
    WriteWholeFile(env.get(), "trunc.zidx", good.substr(0, keep));
    EXPECT_FALSE(ReadBlockIndexFile(env.get(), "trunc.zidx").ok()) << keep;
  }

  // A structurally valid file whose leaf list is not a permutation is
  // rejected even with a correct checksum.
  BlockSkylineIndex dup = index;
  dup.leaf_blocks[0] = dup.leaf_blocks[1];
  ASSERT_OK(WriteBlockIndexFile(env.get(), "dup.zidx", dup));
  EXPECT_FALSE(ReadBlockIndexFile(env.get(), "dup.zidx").ok());
}

TEST(BlockIndex, WriteTableBlockIndexAndCacheRefresh) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table table, MakeUniformTable(env.get(), "t", 1000, 4,
                                                     /*seed=*/7));
  ASSERT_OK(WriteTableColumnFile(table));
  TableZoneCache::Instance().Clear();

  // Before the index exists, cached zones carry no block index.
  bool hit = false;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const TableColumnZones> zones,
                       TableZoneCache::Instance().GetOrLoad(table, &hit));
  EXPECT_EQ(zones->block_index, nullptr);

  // Writing the sidecar changes the cache key (the .zidx size stamp), so
  // the next load attaches the index instead of serving the stale entry.
  ASSERT_OK(WriteTableBlockIndex(table));
  ASSERT_OK_AND_ASSIGN(zones, TableZoneCache::Instance().GetOrLoad(table,
                                                                   &hit));
  EXPECT_FALSE(hit);
  ASSERT_NE(zones->block_index, nullptr);
  EXPECT_EQ(zones->block_index->leaf_count(), (1000 + 63) / 64);
  EXPECT_EQ(zones->block_index->row_count, 1000u);
  EXPECT_EQ(zones->block_index->num_columns, table.schema().num_columns());

  // And the refreshed entry is served from cache on repeat.
  ASSERT_OK_AND_ASSIGN(zones, TableZoneCache::Instance().GetOrLoad(table,
                                                                   &hit));
  EXPECT_TRUE(hit);
  EXPECT_NE(zones->block_index, nullptr);
  TableZoneCache::Instance().Clear();
}

}  // namespace
}  // namespace skyline
