#include "core/bnl.h"

#include "core/naive.h"
#include "core/scoring.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

class BnlTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

SkylineSpec MaxSpec(const Table& t, int dims) {
  std::vector<Criterion> criteria;
  for (int i = 0; i < dims; ++i) {
    criteria.push_back({"a" + std::to_string(i), Directive::kMax});
  }
  auto result = SkylineSpec::Make(t.schema(), std::move(criteria));
  SKYLINE_CHECK(result.ok());
  return std::move(result).value();
}

TEST_F(BnlTest, MatchesOracleOnRandomData) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 2000, 4, 11));
  SkylineSpec spec = MaxSpec(t, 4);
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineBnl(t, spec, BnlOptions{}, ExecContext(), "out", &stats));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.output_rows, sky.row_count());
}

TEST_F(BnlTest, MultiPassTinyWindowMatchesOracle) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 3000, 7, 12));
  SkylineSpec spec = MaxSpec(t, 7);
  BnlOptions opts;
  opts.window_pages = 1;  // 40 full tuples
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky, ComputeSkylineBnl(t, spec, opts, ExecContext(), "out", &stats));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
  EXPECT_GT(stats.passes, 1u);
  EXPECT_GT(stats.spilled_tuples, 0u);
  EXPECT_GT(stats.ExtraPages(), 0u);
}

TEST_F(BnlTest, WindowReplacementHappens) {
  // Ascending chain: each tuple dominates everything before it, so the
  // window keeps replacing and only the last tuple survives.
  std::vector<std::vector<int32_t>> rows;
  for (int i = 0; i < 100; ++i) rows.push_back({i, i});
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, rows));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineBnl(t, spec, BnlOptions{}, ExecContext(), "out", &stats));
  EXPECT_EQ(sky.row_count(), 1u);
  EXPECT_EQ(stats.window_replacements, 99u);
  std::vector<char> out = ReadAll(sky);
  RowView view(&t.schema(), out.data());
  EXPECT_EQ(view.GetInt32(0), 99);
}

TEST_F(BnlTest, EquivalentTuplesAllOutput) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{5, 5}, {5, 5}, {1, 1}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineBnl(t, spec, BnlOptions{}, ExecContext(), "out", nullptr));
  EXPECT_EQ(sky.row_count(), 2u);
}

TEST_F(BnlTest, EmptyInput) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineBnl(t, spec, BnlOptions{}, ExecContext(), "out", nullptr));
  EXPECT_EQ(sky.row_count(), 0u);
}

TEST_F(BnlTest, ReverseEntropyInputMatchesOracle) {
  // The paper's pathological BNL w/RE case must still be correct.
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 1500, 5, 13));
  SkylineSpec spec = MaxSpec(t, 5);
  EntropyOrdering entropy(&spec, t);
  ReverseOrdering reverse_entropy(&entropy);
  BnlOptions opts;
  opts.window_pages = 2;
  opts.input_ordering = &reverse_entropy;
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky, ComputeSkylineBnl(t, spec, opts, ExecContext(), "out", &stats));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
  EXPECT_GT(stats.sort_stats.runs_generated, 0u);
}

TEST_F(BnlTest, ReverseEntropyCostsMoreThanRandom) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 4000, 5, 14));
  SkylineSpec spec = MaxSpec(t, 5);
  BnlOptions opts;
  opts.window_pages = 1;
  SkylineRunStats random_stats;
  ASSERT_OK(ComputeSkylineBnl(t, spec, opts, ExecContext(), "o1", &random_stats).status());

  EntropyOrdering entropy(&spec, t);
  ReverseOrdering reverse_entropy(&entropy);
  opts.input_ordering = &reverse_entropy;
  SkylineRunStats re_stats;
  ASSERT_OK(ComputeSkylineBnl(t, spec, opts, ExecContext(), "o2", &re_stats).status());

  // Reverse-entropy arrival destroys the replacement benefit: strictly more
  // spilled tuples and more passes (the paper's Figure 11/12 effect).
  EXPECT_GT(re_stats.spilled_tuples, random_stats.spilled_tuples);
  EXPECT_GE(re_stats.passes, random_stats.passes);
  EXPECT_GT(re_stats.ExtraPages(), random_stats.ExtraPages());
}

TEST_F(BnlTest, DiffDirectiveMatchesOracle) {
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 1000;
  gen.num_attributes = 4;
  gen.payload_bytes = 0;
  gen.small_domain = true;
  gen.domain_lo = 0;
  gen.domain_hi = 20;
  gen.seed = 15;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", gen));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kDiff},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMin}}));
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineBnl(t, spec, BnlOptions{}, ExecContext(), "out", nullptr));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
}

TEST_F(BnlTest, AgreesWithSfsAcrossWindowSizes) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 2500, 6, 16));
  SkylineSpec spec = MaxSpec(t, 6);
  SfsOptions sfs_opts;
  ASSERT_OK_AND_ASSIGN(Table sfs_sky,
                       ComputeSkylineSfs(t, spec, sfs_opts, ExecContext(), "sfs", nullptr));
  std::vector<char> sfs_rows = ReadAll(sfs_sky);
  const auto want = RowMultiset(sfs_rows.data(), sfs_sky.row_count(),
                                t.schema().row_width());
  for (size_t pages : {1u, 3u, 10u, 100u}) {
    BnlOptions opts;
    opts.window_pages = pages;
    ASSERT_OK_AND_ASSIGN(
        Table sky, ComputeSkylineBnl(t, spec, opts,
                                     ExecContext(),
                                     "out" + std::to_string(pages), nullptr));
    std::vector<char> rows = ReadAll(sky);
    EXPECT_EQ(
        RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
        want)
        << "window_pages=" << pages;
  }
}

TEST_F(BnlTest, SchemaMismatchRejected) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{1, 2}}));
  ASSERT_OK_AND_ASSIGN(Table o, MakeIntTable(env_.get(), "o", 3, {{1, 2, 3}}));
  ASSERT_OK_AND_ASSIGN(SkylineSpec spec,
                       SkylineSpec::Make(o.schema(), {{"a2", Directive::kMax}}));
  EXPECT_TRUE(ComputeSkylineBnl(t, spec, BnlOptions{}, ExecContext(), "out", nullptr)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace skyline
