#include "core/cardinality.h"

#include <cmath>

#include "core/naive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

TEST(Cardinality, OneDimensionIsAlwaysOne) {
  EXPECT_DOUBLE_EQ(ExpectedSkylineSize(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(ExpectedSkylineSize(1000, 1), 1.0);
}

TEST(Cardinality, ZeroRows) {
  EXPECT_DOUBLE_EQ(ExpectedSkylineSize(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(SkylineSizeAsymptotic(0, 3), 0.0);
}

TEST(Cardinality, TwoDimensionsIsHarmonicNumber) {
  // m(n,2) = H_n, the n-th harmonic number.
  double h = 0;
  for (int i = 1; i <= 100; ++i) h += 1.0 / i;
  EXPECT_NEAR(ExpectedSkylineSize(100, 2), h, 1e-9);
}

TEST(Cardinality, SingleTupleAnyDimension) {
  for (int d = 1; d <= 8; ++d) {
    EXPECT_DOUBLE_EQ(ExpectedSkylineSize(1, d), 1.0) << d;
  }
}

TEST(Cardinality, MonotoneInDimensions) {
  for (int d = 1; d < 8; ++d) {
    EXPECT_LT(ExpectedSkylineSize(10000, d), ExpectedSkylineSize(10000, d + 1));
  }
}

TEST(Cardinality, MonotoneInN) {
  for (uint64_t n : {10u, 100u, 1000u}) {
    EXPECT_LT(ExpectedSkylineSize(n, 3), ExpectedSkylineSize(n * 10, 3));
  }
}

TEST(Cardinality, AsymptoticFormula) {
  // (ln n)^{d-1} / (d-1)!
  const double ln1m = std::log(1e6);
  EXPECT_NEAR(SkylineSizeAsymptotic(1'000'000, 5),
              std::pow(ln1m, 4) / 24.0, 1e-6);
  EXPECT_NEAR(SkylineSizeAsymptotic(1'000'000, 7),
              std::pow(ln1m, 6) / 720.0, 1e-6);
}

TEST(Cardinality, PaperScaleEstimatesMatchReportedSizes) {
  // The paper reports 1,651 / 5,357 / 14,081 skyline tuples for 5/6/7
  // dimensions over 1M uniform tuples. The exact expectation should land in
  // the same ballpark (within ~25%: one random draw vs expectation).
  const double e5 = ExpectedSkylineSize(1'000'000, 5);
  const double e6 = ExpectedSkylineSize(1'000'000, 6);
  const double e7 = ExpectedSkylineSize(1'000'000, 7);
  EXPECT_NEAR(e5, 1651.0, 0.25 * 1651.0);
  EXPECT_NEAR(e6, 5357.0, 0.25 * 5357.0);
  EXPECT_NEAR(e7, 14081.0, 0.25 * 14081.0);
  // And the asymptotic tracks the exact value within a factor of ~2.
  EXPECT_LT(SkylineSizeAsymptotic(1'000'000, 5), e5);
  EXPECT_GT(SkylineSizeAsymptotic(1'000'000, 5), e5 / 2);
}

TEST(Cardinality, PredictsEmpiricalSkylineSizes) {
  // Generate uniform data and compare observed skyline sizes with the
  // estimator across dimensions (within 3x: single-sample variance).
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(
      Table t, testing_util::MakeUniformTable(env.get(), "t", 4000, 6, 51, 0));
  std::vector<char> rows = testing_util::ReadAll(t);
  for (int d = 2; d <= 6; ++d) {
    std::vector<Criterion> criteria;
    for (int i = 0; i < d; ++i) {
      criteria.push_back({"a" + std::to_string(i), Directive::kMax});
    }
    ASSERT_OK_AND_ASSIGN(SkylineSpec spec,
                         SkylineSpec::Make(t.schema(), std::move(criteria)));
    const double observed = static_cast<double>(
        NaiveSkylineIndices(spec, rows.data(), t.row_count()).size());
    const double expected = ExpectedSkylineSize(t.row_count(), d);
    EXPECT_GT(observed, expected / 3) << "d=" << d;
    EXPECT_LT(observed, expected * 3) << "d=" << d;
  }
}

TEST(Cardinality, AsymptoticConvergesRelatively) {
  // Ratio exact/asymptotic should approach 1 slowly from above as n grows.
  const double r1 = ExpectedSkylineSize(1000, 3) / SkylineSizeAsymptotic(1000, 3);
  const double r2 =
      ExpectedSkylineSize(100'000, 3) / SkylineSizeAsymptotic(100'000, 3);
  EXPECT_GT(r1, 1.0);
  EXPECT_GT(r2, 1.0);
  EXPECT_LT(r2, r1);
}


TEST(Cardinality, ExtrapolationFromSample) {
  // Exact expectations at two scales must be consistent with the growth-law
  // extrapolation between them (within ~20%: the law drops lower-order
  // terms).
  for (int d : {3, 5, 7}) {
    const double at_10k = ExpectedSkylineSize(10'000, d);
    const double at_1m = ExpectedSkylineSize(1'000'000, d);
    const double extrapolated = ExtrapolateSkylineSize(at_10k, 10'000,
                                                       1'000'000, d);
    EXPECT_NEAR(extrapolated, at_1m, 0.25 * at_1m) << "d=" << d;
  }
}

TEST(Cardinality, ExtrapolationEdgeCases) {
  // Shrinking or equal target returns the sample measurement unchanged.
  EXPECT_DOUBLE_EQ(ExtrapolateSkylineSize(50, 1000, 1000, 4), 50.0);
  EXPECT_DOUBLE_EQ(ExtrapolateSkylineSize(50, 1000, 100, 4), 50.0);
  // One dimension: skyline size is 1 regardless of n.
  EXPECT_DOUBLE_EQ(ExtrapolateSkylineSize(1, 100, 1'000'000, 1), 1.0);
}

TEST(Cardinality, ExtrapolationPredictsEmpiricalGrowth) {
  // Measure the skyline of a sample and of the full (small) table; the
  // extrapolation should land within a factor ~2 (single-draw variance on
  // both ends).
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(
      Table big, testing_util::MakeUniformTable(env.get(), "b", 8000, 4, 52, 0));
  ASSERT_OK_AND_ASSIGN(
      Table small, testing_util::MakeUniformTable(env.get(), "s", 800, 4, 53, 0));
  std::vector<Criterion> criteria;
  for (int i = 0; i < 4; ++i) {
    criteria.push_back({"a" + std::to_string(i), Directive::kMax});
  }
  ASSERT_OK_AND_ASSIGN(SkylineSpec spec,
                       SkylineSpec::Make(big.schema(), criteria));
  std::vector<char> big_rows = testing_util::ReadAll(big);
  std::vector<char> small_rows = testing_util::ReadAll(small);
  const double m_small = static_cast<double>(
      NaiveSkylineIndices(spec, small_rows.data(), small.row_count()).size());
  const double m_big = static_cast<double>(
      NaiveSkylineIndices(spec, big_rows.data(), big.row_count()).size());
  const double predicted = ExtrapolateSkylineSize(m_small, 800, 8000, 4);
  EXPECT_GT(predicted, m_big / 2);
  EXPECT_LT(predicted, m_big * 2);
}

}  // namespace
}  // namespace skyline
