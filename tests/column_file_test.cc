#include "storage/column_file.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "core/run_report.h"
#include "core/sfs.h"
#include "gtest/gtest.h"
#include "relation/column_store.h"
#include "relation/table_io.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;

std::string ReadWholeFile(Env* env, const std::string& path) {
  std::unique_ptr<RandomAccessFile> file;
  EXPECT_TRUE(env->NewRandomAccessFile(path, &file).ok());
  std::string bytes(file->Size(), '\0');
  EXPECT_TRUE(file->Read(0, bytes.size(), bytes.data()).ok());
  return bytes;
}

void WriteWholeFile(Env* env, const std::string& path,
                    const std::string& bytes) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile(path, &file).ok());
  ASSERT_TRUE(file->Append(bytes.data(), bytes.size()).ok());
  ASSERT_TRUE(file->Close().ok());
}

ColumnFileContents SampleContents(uint64_t rows) {
  ColumnFileContents contents;
  contents.block_rows = 64;
  contents.row_count = rows;
  contents.columns.resize(3);
  auto& ints = contents.columns[0];
  ints.kind = ColumnFileKind::kKeyInt32;
  ints.raw_width = 4;
  auto& longs = contents.columns[1];
  longs.kind = ColumnFileKind::kKeyInt64;
  longs.raw_width = 8;
  auto& codes = contents.columns[2];
  codes.kind = ColumnFileKind::kDictCode;
  codes.raw_width = 4;
  codes.dict_entries = 2;
  codes.dict = std::string("abc\0", 4) + std::string("xyz\0", 4);
  for (uint64_t i = 0; i < rows; ++i) {
    ints.data32.push_back(static_cast<int32_t>(i % 100));
    longs.data64.push_back((int64_t{1} << 53) + static_cast<int64_t>(i));
    codes.data32.push_back(static_cast<int32_t>(i % 2));
  }
  return contents;
}

TEST(ColumnFile, RoundTripsBlocksZonesAndDictionary) {
  auto env = NewMemEnv();
  ASSERT_OK(WriteColumnFile(env.get(), "t.cols", SampleContents(130)));
  ASSERT_OK_AND_ASSIGN(ColumnFileContents read,
                       ReadColumnFile(env.get(), "t.cols"));
  EXPECT_EQ(read.block_rows, 64u);
  EXPECT_EQ(read.row_count, 130u);
  EXPECT_EQ(read.BlockCount(), 3u);
  ASSERT_EQ(read.columns.size(), 3u);

  const ColumnFileContents expect = SampleContents(130);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(read.columns[c].kind, expect.columns[c].kind) << c;
    EXPECT_EQ(read.columns[c].raw_width, expect.columns[c].raw_width) << c;
    EXPECT_EQ(read.columns[c].data32, expect.columns[c].data32) << c;
    EXPECT_EQ(read.columns[c].data64, expect.columns[c].data64) << c;
    EXPECT_EQ(read.columns[c].dict, expect.columns[c].dict) << c;
    // Zone maps are recomputed at write time; spot-check block 1 of the
    // int32 column: rows 64..127 hold (i % 100).
    ASSERT_EQ(read.columns[c].zmin.size(), 3u) << c;
  }
  EXPECT_EQ(read.columns[0].zmin[1], 0);    // rows 100..127 wrap to 0..27
  EXPECT_EQ(read.columns[0].zmax[1], 99);
  EXPECT_EQ(read.columns[1].zmin[0], int64_t{1} << 53);
  EXPECT_EQ(read.columns[1].zmax[2], (int64_t{1} << 53) + 129);
  EXPECT_EQ(read.columns[2].zmin[0], 0);
  EXPECT_EQ(read.columns[2].zmax[0], 1);
}

TEST(ColumnFile, DetectsCorruptionAndTruncation) {
  auto env = NewMemEnv();
  ASSERT_OK(WriteColumnFile(env.get(), "t.cols", SampleContents(100)));
  const std::string good = ReadWholeFile(env.get(), "t.cols");

  // A flipped byte anywhere in the body fails the trailing checksum.
  std::string bad = good;
  bad[bad.size() / 2] ^= 0x40;
  WriteWholeFile(env.get(), "t.cols", bad);
  EXPECT_TRUE(ReadColumnFile(env.get(), "t.cols").status().IsCorruption());

  // Truncation fails before any structure is trusted.
  WriteWholeFile(env.get(), "t.cols", good.substr(0, good.size() / 3));
  EXPECT_TRUE(ReadColumnFile(env.get(), "t.cols").status().IsCorruption());

  // A stale-version file is rejected, not misparsed.
  std::string wrong_version = good;
  wrong_version[8] = 9;  // version field follows the 8-byte magic
  WriteWholeFile(env.get(), "t.cols", wrong_version);
  EXPECT_TRUE(ReadColumnFile(env.get(), "t.cols").status().IsCorruption());

  WriteWholeFile(env.get(), "t.cols", good);
  EXPECT_OK(ReadColumnFile(env.get(), "t.cols").status());
}

TEST(ColumnFile, TableSidecarMatchesScanAndValidatesShape) {
  auto env = NewMemEnv();
  std::vector<std::vector<int32_t>> rows;
  for (int i = 0; i < 200; ++i) rows.push_back({i, 199 - i, (i * 7) % 13});
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env.get(), "t", 3, rows));
  ASSERT_OK(WriteTableColumnFile(t));
  EXPECT_TRUE(env->FileExists(ColumnFilePathFor("t")));

  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const TableColumnZones> scanned,
                       BuildTableColumnZones(t));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const TableColumnZones> loaded,
                       LoadTableColumnZones(t));
  EXPECT_STREQ(scanned->source, "scan");
  EXPECT_STREQ(loaded->source, "column_file");
  ASSERT_EQ(loaded->columns.size(), scanned->columns.size());
  EXPECT_EQ(loaded->block_rows, scanned->block_rows);
  for (size_t c = 0; c < scanned->columns.size(); ++c) {
    EXPECT_EQ(loaded->columns[c].zmin, scanned->columns[c].zmin) << c;
    EXPECT_EQ(loaded->columns[c].zmax, scanned->columns[c].zmax) << c;
  }

  // A rebuilt table with a different shape must reject the stale sidecar.
  rows.push_back({1, 2, 3});
  ASSERT_OK_AND_ASSIGN(Table regrown, MakeIntTable(env.get(), "t2", 3, rows));
  WriteWholeFile(env.get(), ColumnFilePathFor("t2"),
                 ReadWholeFile(env.get(), ColumnFilePathFor("t")));
  EXPECT_TRUE(LoadTableColumnZones(regrown).status().IsCorruption());
}

TEST(ColumnFile, SidecarRoundTripsStringDictionaries) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table guide, MakeGoodEatsTable(env.get(), "g"));
  ASSERT_OK(SaveTableWithColumns(guide, "g.meta"));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const TableColumnZones> loaded,
                       LoadTableColumnZones(guide));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const TableColumnZones> scanned,
                       BuildTableColumnZones(guide));
  bool saw_string = false;
  for (size_t c = 0; c < guide.schema().num_columns(); ++c) {
    if (guide.schema().column(c).type != ColumnType::kFixedString) continue;
    saw_string = true;
    ASSERT_NE(loaded->columns[c].dict, nullptr) << c;
    ASSERT_NE(scanned->columns[c].dict, nullptr) << c;
    // Codes are assigned in first-appearance order by both paths, so the
    // reloaded dictionary must literally match the scan's.
    ASSERT_EQ(loaded->columns[c].dict->size(), scanned->columns[c].dict->size());
    for (size_t code = 0; code < scanned->columns[c].dict->size(); ++code) {
      EXPECT_EQ(std::memcmp(
                    loaded->columns[c].dict->Value(static_cast<int32_t>(code)),
                    scanned->columns[c].dict->Value(static_cast<int32_t>(code)),
                    guide.schema().column(c).string_length),
                0);
    }
    EXPECT_EQ(loaded->columns[c].zmin, scanned->columns[c].zmin) << c;
    EXPECT_EQ(loaded->columns[c].zmax, scanned->columns[c].zmax) << c;
  }
  EXPECT_TRUE(saw_string);
}

TEST(TableZoneCache, ServesRepeatedQueriesWithoutRebuilding) {
  TableZoneCache::Instance().Clear();
  auto env = NewMemEnv();
  std::vector<std::vector<int32_t>> rows;
  for (int i = 0; i < 100; ++i) rows.push_back({i, i % 10});
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env.get(), "t", 2, rows));

  bool hit = true;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const TableColumnZones> first,
                       TableZoneCache::Instance().GetOrLoad(t, &hit));
  EXPECT_FALSE(hit);
  EXPECT_STREQ(first->source, "scan");

  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const TableColumnZones> second,
                       TableZoneCache::Instance().GetOrLoad(t, &hit));
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // same object, no rebuild

  TableZoneCache::Instance().Clear();
  EXPECT_EQ(TableZoneCache::Instance().size(), 0u);
}

TEST(TableZoneCache, PrefersColumnFileAndDegradesOnCorruption) {
  TableZoneCache::Instance().Clear();
  auto env = NewMemEnv();
  std::vector<std::vector<int32_t>> rows;
  for (int i = 0; i < 100; ++i) rows.push_back({i, i % 10});
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env.get(), "t", 2, rows));
  ASSERT_OK(WriteTableColumnFile(t));

  bool hit = true;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const TableColumnZones> zones,
                       TableZoneCache::Instance().GetOrLoad(t, &hit));
  EXPECT_FALSE(hit);
  EXPECT_STREQ(zones->source, "column_file");

  // Corrupt sidecar: the cache must fall back to a scan, never error.
  TableZoneCache::Instance().Clear();
  std::string bytes = ReadWholeFile(env.get(), ColumnFilePathFor("t"));
  bytes[bytes.size() - 3] ^= 0x01;
  WriteWholeFile(env.get(), ColumnFilePathFor("t"), bytes);
  ASSERT_OK_AND_ASSIGN(zones, TableZoneCache::Instance().GetOrLoad(t, &hit));
  EXPECT_STREQ(zones->source, "scan");
  TableZoneCache::Instance().Clear();
}

TEST(ZonePrefilter, PresortedInputSkipsDominatedBlocksEndToEnd) {
  TableZoneCache::Instance().Clear();
  auto env = NewMemEnv();
  // Input sorted by descending a0+a1 (a monotone scoring order): one
  // early dominator, then 639 weak rows across 10 zone blocks.
  std::vector<std::vector<int32_t>> rows;
  rows.push_back({100, 100});
  for (int i = 0; i < 639; ++i) rows.push_back({9 - (i * 9) / 639, 9});
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env.get(), "t", 2, rows));
  ASSERT_OK(WriteTableColumnFile(t));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));

  SfsOptions options;
  options.presort = Presort::kNone;
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky, ComputeSkylineSfs(t, spec, options, ExecContext(), "s1",
                                                    &stats));
  EXPECT_EQ(sky.row_count(), 1u);
  EXPECT_STREQ(stats.zone_map_source, "column_file");
  EXPECT_EQ(stats.column_file_blocks_read, 10u);
  // Block 0 holds the dominator (window still empty at its boundary);
  // every later block's corner is dominated.
  EXPECT_EQ(stats.table_zone_blocks_pruned, 9u);

  // Second query: zones come from the in-process cache, no file reads.
  SkylineRunStats again;
  ASSERT_OK_AND_ASSIGN(Table sky2, ComputeSkylineSfs(t, spec, options, ExecContext(), "s2",
                                                     &again));
  EXPECT_EQ(sky2.row_count(), 1u);
  EXPECT_STREQ(again.zone_map_source, "cache");
  EXPECT_EQ(again.column_file_blocks_read, 0u);
  EXPECT_EQ(again.table_zone_blocks_pruned, 9u);

  // The counters surface in the versioned run report.
  RunReport report;
  report.tool = "test";
  report.stats = again;
  const std::string json = RenderRunReportJson(report);
  EXPECT_NE(json.find("\"table_zone_blocks_pruned\""), std::string::npos);
  EXPECT_NE(json.find("\"zone_map_source\""), std::string::npos);
  TableZoneCache::Instance().Clear();
}

TEST(ZonePrefilter, PruningNeverChangesTheSkyline) {
  TableZoneCache::Instance().Clear();
  auto env = NewMemEnv();
  Random rng(42);
  // Random rows sorted descending by sum — monotone, so Presort::kNone is
  // legal; results with and without zone maps must be byte-identical.
  std::vector<std::vector<int32_t>> rows;
  for (int i = 0; i < 500; ++i) {
    rows.push_back({rng.UniformInt32(0, 50), rng.UniformInt32(0, 50),
                    rng.UniformInt32(0, 50)});
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) {
                     return a[0] + a[1] + a[2] > b[0] + b[1] + b[2];
                   });
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env.get(), "t", 3, rows));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}}));
  SfsOptions options;
  options.presort = Presort::kNone;

  SkylineRunStats with_zones;
  ASSERT_OK_AND_ASSIGN(
      Table pruned, ComputeSkylineSfs(t, spec, options, ExecContext(), "p", &with_zones));
  EXPECT_STREQ(with_zones.zone_map_source, "scan");
  const std::vector<char> got = testing_util::ReadAll(pruned);
  EXPECT_EQ(testing_util::RowMultiset(got.data(), pruned.row_count(),
                                      t.schema().row_width()),
            testing_util::OracleSkylineMultiset(t, spec));
  TableZoneCache::Instance().Clear();
}

}  // namespace
}  // namespace skyline
