// Coverage for the small common utilities: stopwatch, CHECK macros, and
// the run-stats arithmetic used across every bench.

#include <unistd.h>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/run_stats.h"
#include "gtest/gtest.h"

namespace skyline {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  ::usleep(20'000);  // 20 ms
  const double elapsed = watch.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);  // loose upper bound for loaded machines
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 50);
}

TEST(Stopwatch, RestartResets) {
  Stopwatch watch;
  ::usleep(20'000);
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 0.015);
}

TEST(Logging, ChecksPassOnTrueConditions) {
  SKYLINE_CHECK(true) << "never printed";
  SKYLINE_CHECK_EQ(1, 1);
  SKYLINE_CHECK_NE(1, 2);
  SKYLINE_CHECK_LT(1, 2);
  SKYLINE_CHECK_LE(2, 2);
  SKYLINE_CHECK_GT(2, 1);
  SKYLINE_CHECK_GE(2, 2);
  SKYLINE_CHECK_OK(Status::OK());
}

TEST(LoggingDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(SKYLINE_CHECK(false) << "context 42", "context 42");
  EXPECT_DEATH(SKYLINE_CHECK_EQ(1, 2), "Check failed");
  EXPECT_DEATH(SKYLINE_CHECK_OK(Status::IoError("boom")), "boom");
}

TEST(RunStats, ExtraPagesSumsTempIo) {
  SkylineRunStats stats;
  stats.temp_io.pages_written = 7;
  stats.temp_io.pages_read = 5;
  EXPECT_EQ(stats.ExtraPages(), 12u);
  stats.sort_seconds = 1.5;
  stats.filter_seconds = 0.25;
  EXPECT_DOUBLE_EQ(stats.total_seconds(), 1.75);
}

}  // namespace
}  // namespace skyline
