#include "sort/comparator.h"

#include <cstring>

#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

class ComparatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto result = Schema::Make(
        {ColumnDef::Int32("a"), ColumnDef::Int32("b"), ColumnDef::Float64("c")});
    ASSERT_TRUE(result.ok());
    schema_ = std::move(result).value();
  }

  std::vector<char> Row(int32_t a, int32_t b, double c) {
    std::vector<char> row(schema_.row_width());
    std::memcpy(row.data() + schema_.offset(0), &a, 4);
    std::memcpy(row.data() + schema_.offset(1), &b, 4);
    std::memcpy(row.data() + schema_.offset(2), &c, 8);
    return row;
  }

  Schema schema_;
};

TEST_F(ComparatorTest, SingleKeyAscending) {
  LexicographicOrdering ord(&schema_, {{0, false}});
  auto lo = Row(1, 0, 0), hi = Row(2, 0, 0);
  EXPECT_LT(ord.Compare(lo.data(), hi.data()), 0);
  EXPECT_GT(ord.Compare(hi.data(), lo.data()), 0);
  EXPECT_EQ(ord.Compare(lo.data(), lo.data()), 0);
}

TEST_F(ComparatorTest, SingleKeyDescending) {
  LexicographicOrdering ord(&schema_, {{0, true}});
  auto lo = Row(1, 0, 0), hi = Row(2, 0, 0);
  EXPECT_GT(ord.Compare(lo.data(), hi.data()), 0);
  EXPECT_LT(ord.Compare(hi.data(), lo.data()), 0);
}

TEST_F(ComparatorTest, NestedKeysBreakTies) {
  LexicographicOrdering ord(&schema_, {{0, true}, {1, true}});
  auto a = Row(5, 9, 0), b = Row(5, 3, 0);
  // Equal on key 0; key 1 descending puts the 9 first.
  EXPECT_LT(ord.Compare(a.data(), b.data()), 0);
}

TEST_F(ComparatorTest, MixedDirections) {
  LexicographicOrdering ord(&schema_, {{0, true}, {2, false}});
  auto a = Row(5, 0, 1.0), b = Row(5, 0, 2.0);
  EXPECT_LT(ord.Compare(a.data(), b.data()), 0);  // smaller c first
}

TEST_F(ComparatorTest, AllKeysEqualIsZero) {
  LexicographicOrdering ord(&schema_, {{0, true}, {1, false}, {2, true}});
  auto a = Row(1, 2, 3.0), b = Row(1, 2, 3.0);
  EXPECT_EQ(ord.Compare(a.data(), b.data()), 0);
}

TEST_F(ComparatorTest, NoScalarKeyByDefault) {
  LexicographicOrdering ord(&schema_, {{0, false}});
  EXPECT_FALSE(ord.has_key());
}

TEST_F(ComparatorTest, ReverseOrderingInverts) {
  LexicographicOrdering base(&schema_, {{0, false}});
  ReverseOrdering rev(&base);
  auto lo = Row(1, 0, 0), hi = Row(2, 0, 0);
  EXPECT_GT(rev.Compare(lo.data(), hi.data()), 0);
  EXPECT_LT(rev.Compare(hi.data(), lo.data()), 0);
  EXPECT_EQ(rev.Compare(lo.data(), lo.data()), 0);
}

TEST_F(ComparatorTest, TransitivityOnSamples) {
  LexicographicOrdering ord(&schema_, {{0, true}, {1, false}});
  auto a = Row(3, 1, 0), b = Row(2, 5, 0), c = Row(2, 7, 0);
  ASSERT_LT(ord.Compare(a.data(), b.data()), 0);
  ASSERT_LT(ord.Compare(b.data(), c.data()), 0);
  EXPECT_LT(ord.Compare(a.data(), c.data()), 0);
}

}  // namespace
}  // namespace skyline
