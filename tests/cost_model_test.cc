#include "core/cost_model.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeUniformTable;

SkylineSpec MaxSpec(const Table& t, int dims) {
  std::vector<Criterion> criteria;
  for (int i = 0; i < dims; ++i) {
    criteria.push_back({"a" + std::to_string(i), Directive::kMax});
  }
  auto result = SkylineSpec::Make(t.schema(), std::move(criteria));
  SKYLINE_CHECK(result.ok());
  return std::move(result).value();
}

TEST(CostModel, PassFormulaBasics) {
  EXPECT_EQ(SfsPassesForSkyline(0, 100), 1u);
  EXPECT_EQ(SfsPassesForSkyline(1, 100), 1u);
  EXPECT_EQ(SfsPassesForSkyline(100, 100), 1u);
  EXPECT_EQ(SfsPassesForSkyline(101, 100), 2u);
  EXPECT_EQ(SfsPassesForSkyline(1000, 100), 10u);
  EXPECT_EQ(SfsPassesForSkyline(1001, 100), 11u);
}

TEST(CostModel, PassFormulaIsExactAgainstMeasuredRuns) {
  // Fact 1 of the cost model: with a monotone presort and no DIFF groups,
  // SFS passes == ceil(skyline / window capacity) — exactly.
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env.get(), "t", 4000, 6, 401));
  SkylineSpec spec = MaxSpec(t, 6);
  for (size_t pages : {1u, 2u, 4u, 16u, 64u}) {
    for (bool projection : {false, true}) {
      SfsOptions opts;
      opts.window_pages = pages;
      opts.use_projection = projection;
      SkylineRunStats stats;
      auto sky = ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", &stats);
      ASSERT_TRUE(sky.ok());
      const size_t entry_width = projection
                                     ? spec.projected_schema().row_width()
                                     : spec.schema().row_width();
      const uint64_t capacity = pages * RecordsPerPage(entry_width);
      // With projection the window holds *distinct* projected tuples; on
      // full-range random data duplicates are absent, so output count
      // works for both modes.
      EXPECT_EQ(stats.passes, SfsPassesForSkyline(stats.output_rows, capacity))
          << "pages=" << pages << " proj=" << projection;
    }
  }
}

TEST(CostModel, EstimatePredictsMeasuredPassesWithinOne) {
  // Fact 2: plugging the cardinality estimate into the pass formula lands
  // within one pass of the measurement on uniform data.
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env.get(), "t", 8000, 5, 402));
  SkylineSpec spec = MaxSpec(t, 5);
  for (size_t pages : {1u, 2u, 8u}) {
    SfsOptions opts;
    opts.window_pages = pages;
    opts.use_projection = false;
    SfsCostEstimate estimate = EstimateSfsCost(t.row_count(), spec, opts);
    SkylineRunStats stats;
    auto sky = ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", &stats);
    ASSERT_TRUE(sky.ok());
    const int64_t diff = static_cast<int64_t>(estimate.passes) -
                         static_cast<int64_t>(stats.passes);
    EXPECT_LE(std::abs(diff), 1) << "pages=" << pages << " est "
                                 << estimate.passes << " vs " << stats.passes;
  }
}

TEST(CostModel, CapacityReflectsProjection) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env.get(), "t", 100, 5, 403,
                                                 /*payload_bytes=*/60));
  SkylineSpec spec = MaxSpec(t, 5);
  SfsOptions opts;
  opts.window_pages = 1;
  opts.use_projection = false;
  SfsCostEstimate full = EstimateSfsCost(t.row_count(), spec, opts);
  opts.use_projection = true;
  SfsCostEstimate proj = EstimateSfsCost(t.row_count(), spec, opts);
  // 80-byte rows vs 20-byte projections: 4x the capacity.
  EXPECT_EQ(full.window_capacity, 51u);   // 4096 / 80
  EXPECT_EQ(proj.window_capacity, 204u);  // 4096 / 20
}

TEST(CostModel, SpillBoundCoversMeasurement) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env.get(), "t", 6000, 6, 404));
  SkylineSpec spec = MaxSpec(t, 6);
  SfsOptions opts;
  opts.window_pages = 1;
  opts.use_projection = false;
  SfsCostEstimate estimate = EstimateSfsCost(t.row_count(), spec, opts);
  SkylineRunStats stats;
  auto sky = ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", &stats);
  ASSERT_TRUE(sky.ok());
  EXPECT_GE(estimate.spilled_tuples_bound,
            static_cast<double>(stats.spilled_tuples));
  EXPECT_GE(estimate.extra_pages_bound,
            static_cast<double>(stats.ExtraPages()));
}

TEST(CostModel, InputPagesMatchTable) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env.get(), "t", 1000, 5, 405,
                                                 /*payload_bytes=*/80));
  SkylineSpec spec = MaxSpec(t, 5);
  SfsCostEstimate estimate =
      EstimateSfsCost(t.row_count(), spec, SfsOptions{});
  EXPECT_EQ(estimate.input_pages, t.page_count());
}

}  // namespace
}  // namespace skyline
