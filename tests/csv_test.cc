#include "relation/csv.h"

#include "core/sfs.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

TEST(ParseCsvRecord, SimpleFields) {
  size_t pos = 0;
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvRecord("a,b,c\n", &pos, &fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_FALSE(ParseCsvRecord("a,b,c\n", &pos, &fields));
}

TEST(ParseCsvRecord, QuotedFieldWithComma) {
  size_t pos = 0;
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvRecord("\"a,b\",c\n", &pos, &fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a,b", "c"}));
}

TEST(ParseCsvRecord, EscapedQuotes) {
  size_t pos = 0;
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvRecord("\"say \"\"hi\"\"\",x\n", &pos, &fields));
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(ParseCsvRecord, QuotedNewline) {
  size_t pos = 0;
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvRecord("\"line1\nline2\",y\n", &pos, &fields));
  EXPECT_EQ(fields[0], "line1\nline2");
  EXPECT_EQ(fields[1], "y");
}

TEST(ParseCsvRecord, CrLfEndings) {
  size_t pos = 0;
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvRecord("a,b\r\nc,d\r\n", &pos, &fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(ParseCsvRecord("a,b\r\nc,d\r\n", &pos, &fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsvRecord, MissingTrailingNewline) {
  size_t pos = 0;
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvRecord("a,b", &pos, &fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
  EXPECT_FALSE(ParseCsvRecord("a,b", &pos, &fields));
}

TEST(ParseCsvRecord, EmptyFields) {
  size_t pos = 0;
  std::vector<std::string> fields;
  ASSERT_TRUE(ParseCsvRecord(",,\n", &pos, &fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"", "", ""}));
}

class CsvTableTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

TEST_F(CsvTableTest, TypeInference) {
  ASSERT_OK_AND_ASSIGN(
      Table t, CsvToTable(env_.get(), "t",
                          "id,score,name\n1,2.5,alpha\n2,3,beta\n-7,0.25,c\n"));
  ASSERT_EQ(t.schema().num_columns(), 3u);
  EXPECT_EQ(t.schema().column(0).type, ColumnType::kInt32);
  EXPECT_EQ(t.schema().column(1).type, ColumnType::kFloat64);
  EXPECT_EQ(t.schema().column(2).type, ColumnType::kFixedString);
  EXPECT_EQ(t.row_count(), 3u);

  std::vector<char> rows = testing_util::ReadAll(t);
  RowView row(&t.schema(), rows.data());
  EXPECT_EQ(row.GetInt32(0), 1);
  EXPECT_EQ(row.GetFloat64(1), 2.5);
  EXPECT_EQ(row.GetString(2), "alpha");
}

TEST_F(CsvTableTest, IntOverflowPromotesToFloat) {
  ASSERT_OK_AND_ASSIGN(
      Table t, CsvToTable(env_.get(), "t", "big\n9999999999\n1\n"));
  EXPECT_EQ(t.schema().column(0).type, ColumnType::kFloat64);
}

TEST_F(CsvTableTest, EmptyFieldForcesString) {
  ASSERT_OK_AND_ASSIGN(Table t,
                       CsvToTable(env_.get(), "t", "v\n1\n\n2\n"));
  // The blank line is skipped, but an empty field would not parse as int…
  // here all remaining fields are ints.
  EXPECT_EQ(t.schema().column(0).type, ColumnType::kInt32);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST_F(CsvTableTest, MismatchedFieldCountRejected) {
  EXPECT_TRUE(CsvToTable(env_.get(), "t", "a,b\n1,2\n3\n")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CsvTableTest, NoHeaderRejected) {
  EXPECT_TRUE(CsvToTable(env_.get(), "t", "").status().IsInvalidArgument());
}

TEST_F(CsvTableTest, OverlongStringRejected) {
  CsvOptions options;
  options.max_string_length = 4;
  EXPECT_TRUE(CsvToTable(env_.get(), "t", "s\ntoolongvalue\n", options)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CsvTableTest, RoundTrip) {
  const std::string csv =
      "name,score,price\n\"comma, inc\",10,1.5\nplain,-3,0.25\n";
  ASSERT_OK_AND_ASSIGN(Table t, CsvToTable(env_.get(), "t", csv));
  ASSERT_OK_AND_ASSIGN(std::string out, TableToCsv(t));
  ASSERT_OK_AND_ASSIGN(Table t2, CsvToTable(env_.get(), "t2", out));
  EXPECT_TRUE(t2.schema().Equals(t.schema()));
  EXPECT_EQ(testing_util::ReadAll(t2), testing_util::ReadAll(t));
}

TEST_F(CsvTableTest, QuotedValuesEscapedOnExport) {
  ASSERT_OK_AND_ASSIGN(
      Table t, CsvToTable(env_.get(), "t", "s\n\"has \"\"quotes\"\"\"\n"));
  ASSERT_OK_AND_ASSIGN(std::string out, TableToCsv(t));
  EXPECT_EQ(out, "s\n\"has \"\"quotes\"\"\"\n");
}

TEST_F(CsvTableTest, StatsCollectedForSkyline) {
  // End to end: CSV in, skyline out (the csv_skyline example's path).
  const std::string csv =
      "restaurant,S,F,D,price\n"
      "Summer Moon,21,25,19,47.50\n"
      "Zakopane,24,20,21,56.00\n"
      "Brearton Grill,15,18,20,62.00\n"
      "Yamanote,22,22,17,51.50\n"
      "Fenton & Pickle,16,14,10,17.50\n"
      "Briar Patch BBQ,14,13,3,22.50\n";
  ASSERT_OK_AND_ASSIGN(Table t, CsvToTable(env_.get(), "t", csv));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"S", Directive::kMax},
                                     {"F", Directive::kMax},
                                     {"D", Directive::kMax},
                                     {"price", Directive::kMin}}));
  ASSERT_OK_AND_ASSIGN(
      Table sky, ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "sky", nullptr));
  EXPECT_EQ(sky.row_count(), 4u);
}

TEST_F(CsvTableTest, ReadCsvFileFromDisk) {
  const std::string path = ::testing::TempDir() + "skyline_csv_test.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("x,y\n1,2\n3,4\n", f);
    std::fclose(f);
  }
  ASSERT_OK_AND_ASSIGN(Table t, ReadCsvFile(env_.get(), path, "t"));
  EXPECT_EQ(t.row_count(), 2u);
  std::remove(path.c_str());
  EXPECT_TRUE(
      ReadCsvFile(env_.get(), path + ".nope", "t2").status().IsNotFound());
}

}  // namespace
}  // namespace skyline
