#include "core/dim_reduce.h"

#include "core/naive.h"
#include "core/sfs.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

class DimReduceTest : public ::testing::Test {
 protected:
  Result<Table> SmallDomainTable(uint64_t n, int dims, uint64_t seed) {
    GeneratorOptions gen;
    gen.num_rows = n;
    gen.num_attributes = dims;
    gen.payload_bytes = 0;
    gen.small_domain = true;
    gen.domain_lo = 0;
    gen.domain_hi = 9;
    gen.seed = seed;
    return GenerateTable(env_.get(), "t", gen);
  }

  std::unique_ptr<Env> env_ = NewMemEnv();
};

SkylineSpec MaxSpec(const Table& t, int dims) {
  std::vector<Criterion> criteria;
  for (int i = 0; i < dims; ++i) {
    criteria.push_back({"a" + std::to_string(i), Directive::kMax});
  }
  auto result = SkylineSpec::Make(t.schema(), std::move(criteria));
  SKYLINE_CHECK(result.ok());
  return std::move(result).value();
}

TEST_F(DimReduceTest, PreservesSkyline) {
  ASSERT_OK_AND_ASSIGN(Table t, SmallDomainTable(5000, 4, 41));
  SkylineSpec spec = MaxSpec(t, 4);
  DimReduceStats stats;
  ASSERT_OK_AND_ASSIGN(
      Table reduced, DimensionalReduction(t, spec, SortOptions{}, ExecContext(), "red", &stats));
  // The reduced table's skyline equals the original's (projected onto the
  // skyline attributes; surviving representative tuples may differ only in
  // non-criterion columns, of which this table has none).
  ASSERT_OK_AND_ASSIGN(std::vector<char> sky_orig, NaiveSkylineRows(t, spec));
  ASSERT_OK_AND_ASSIGN(std::vector<char> sky_red, NaiveSkylineRows(reduced, spec));
  const size_t w = t.schema().row_width();
  EXPECT_EQ(RowMultiset(sky_red.data(), sky_red.size() / w, w),
            RowMultiset(sky_orig.data(), sky_orig.size() / w, w));
}

TEST_F(DimReduceTest, ReducesSmallDomainsSubstantially) {
  // The paper's experiment: domains 0..9, 4 dims, 1M -> ~10%. At 20k rows
  // there are at most 1000 groups over the first 3 attributes, so the
  // reduction is even stronger (bounded by groups x ties).
  ASSERT_OK_AND_ASSIGN(Table t, SmallDomainTable(20000, 4, 42));
  SkylineSpec spec = MaxSpec(t, 4);
  DimReduceStats stats;
  ASSERT_OK_AND_ASSIGN(
      Table reduced, DimensionalReduction(t, spec, SortOptions{}, ExecContext(), "red", &stats));
  EXPECT_EQ(stats.input_rows, 20000u);
  EXPECT_EQ(stats.output_rows, reduced.row_count());
  EXPECT_LT(stats.ReductionRatio(), 0.35);
  EXPECT_GT(reduced.row_count(), 0u);
}

TEST_F(DimReduceTest, OutputFeedsSfsWithoutResort) {
  // The reduced table is in nested monotone order, so Presort::kNone works.
  ASSERT_OK_AND_ASSIGN(Table t, SmallDomainTable(8000, 4, 43));
  SkylineSpec spec = MaxSpec(t, 4);
  ASSERT_OK_AND_ASSIGN(
      Table reduced, DimensionalReduction(t, spec, SortOptions{}, ExecContext(), "red", nullptr));
  SfsOptions opts;
  opts.presort = Presort::kNone;
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineSfs(reduced, spec, opts, ExecContext(), "out", nullptr));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
}

TEST_F(DimReduceTest, TiesOnLastAttributeAllKept) {
  // Two tuples in the same group with equal (maximal) last value: both stay.
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 3,
                            {{1, 1, 5}, {1, 1, 5}, {1, 1, 3}, {2, 2, 0}}));
  SkylineSpec spec = MaxSpec(t, 3);
  DimReduceStats stats;
  ASSERT_OK_AND_ASSIGN(
      Table reduced, DimensionalReduction(t, spec, SortOptions{}, ExecContext(), "red", &stats));
  EXPECT_EQ(reduced.row_count(), 3u);  // two (1,1,5)s and (2,2,0)
}

TEST_F(DimReduceTest, MinDirectiveOnLastAttribute) {
  ASSERT_OK_AND_ASSIGN(
      Table t,
      MakeIntTable(env_.get(), "t", 2, {{1, 9}, {1, 2}, {1, 5}, {2, 7}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMin}}));
  ASSERT_OK_AND_ASSIGN(
      Table reduced, DimensionalReduction(t, spec, SortOptions{}, ExecContext(), "red", nullptr));
  // Group a0=1 keeps only a1=2; group a0=2 keeps a1=7.
  EXPECT_EQ(reduced.row_count(), 2u);
  ASSERT_OK_AND_ASSIGN(std::vector<char> sky_orig, NaiveSkylineRows(t, spec));
  ASSERT_OK_AND_ASSIGN(std::vector<char> sky_red, NaiveSkylineRows(reduced, spec));
  const size_t w = t.schema().row_width();
  EXPECT_EQ(RowMultiset(sky_red.data(), sky_red.size() / w, w),
            RowMultiset(sky_orig.data(), sky_orig.size() / w, w));
}

TEST_F(DimReduceTest, DiffColumnsPartOfGrouping) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 3,
                            {{1, 5, 9}, {1, 5, 3}, {2, 5, 1}, {2, 5, 8}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kDiff},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}}));
  ASSERT_OK_AND_ASSIGN(
      Table reduced, DimensionalReduction(t, spec, SortOptions{}, ExecContext(), "red", nullptr));
  // One survivor per (diff group, a1) combination.
  EXPECT_EQ(reduced.row_count(), 2u);
  ASSERT_OK_AND_ASSIGN(std::vector<char> sky_orig, NaiveSkylineRows(t, spec));
  ASSERT_OK_AND_ASSIGN(std::vector<char> sky_red, NaiveSkylineRows(reduced, spec));
  const size_t w = t.schema().row_width();
  EXPECT_EQ(RowMultiset(sky_red.data(), sky_red.size() / w, w),
            RowMultiset(sky_orig.data(), sky_orig.size() / w, w));
}

TEST_F(DimReduceTest, RequiresTwoValueCriteria) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{1, 2}}));
  ASSERT_OK_AND_ASSIGN(SkylineSpec spec,
                       SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax}}));
  EXPECT_TRUE(DimensionalReduction(t, spec, SortOptions{}, ExecContext(), "red", nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(DimReduceTest, LargeDomainsReduceLittle) {
  // With full-range int32 attributes nearly every tuple is its own group:
  // reduction is ineffective, exactly as the paper cautions.
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "u", 3000, 3, 44, 0));
  SkylineSpec spec = MaxSpec(t, 3);
  DimReduceStats stats;
  ASSERT_OK_AND_ASSIGN(
      Table reduced, DimensionalReduction(t, spec, SortOptions{}, ExecContext(), "red", &stats));
  EXPECT_GT(stats.ReductionRatio(), 0.99);
  (void)reduced;
}

}  // namespace
}  // namespace skyline
