#include "core/divide_conquer.h"

#include "core/naive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;

class DivideConquerTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

SkylineSpec MaxSpec(const Table& t, int dims) {
  std::vector<Criterion> criteria;
  for (int i = 0; i < dims; ++i) {
    criteria.push_back({"a" + std::to_string(i), Directive::kMax});
  }
  auto result = SkylineSpec::Make(t.schema(), std::move(criteria));
  SKYLINE_CHECK(result.ok());
  return std::move(result).value();
}

TEST_F(DivideConquerTest, SmallExample) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{4, 1}, {2, 2}, {1, 4}, {0, 0}}));
  SkylineSpec spec = MaxSpec(t, 2);
  std::vector<char> rows = testing_util::ReadAll(t);
  EXPECT_EQ(DivideConquerSkylineIndices(spec, rows.data(), 4),
            (std::vector<uint64_t>{0, 1, 2}));
}

TEST_F(DivideConquerTest, MatchesNaiveOnRandomData) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    ASSERT_OK_AND_ASSIGN(
        Table t, MakeUniformTable(env_.get(), "t" + std::to_string(seed), 2000,
                                  4, seed, 0));
    SkylineSpec spec = MaxSpec(t, 4);
    std::vector<char> rows = testing_util::ReadAll(t);
    EXPECT_EQ(DivideConquerSkylineIndices(spec, rows.data(), t.row_count()),
              NaiveSkylineIndices(spec, rows.data(), t.row_count()))
        << "seed " << seed;
  }
}

TEST_F(DivideConquerTest, MatchesNaiveWithDuplicatesAndTies) {
  // Small domain forces many ties on the split dimension.
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 1500;
  gen.num_attributes = 3;
  gen.payload_bytes = 0;
  gen.small_domain = true;
  gen.domain_lo = 0;
  gen.domain_hi = 4;
  gen.seed = 24;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", gen));
  SkylineSpec spec = MaxSpec(t, 3);
  std::vector<char> rows = testing_util::ReadAll(t);
  EXPECT_EQ(DivideConquerSkylineIndices(spec, rows.data(), t.row_count()),
            NaiveSkylineIndices(spec, rows.data(), t.row_count()));
}

TEST_F(DivideConquerTest, MinDirectives) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 1000, 3, 25, 0));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMin},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMin}}));
  std::vector<char> rows = testing_util::ReadAll(t);
  EXPECT_EQ(DivideConquerSkylineIndices(spec, rows.data(), t.row_count()),
            NaiveSkylineIndices(spec, rows.data(), t.row_count()));
}

TEST_F(DivideConquerTest, DiffGroups) {
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 800;
  gen.num_attributes = 3;
  gen.payload_bytes = 0;
  gen.small_domain = true;
  gen.domain_lo = 0;
  gen.domain_hi = 15;
  gen.seed = 26;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", gen));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kDiff},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}}));
  std::vector<char> rows = testing_util::ReadAll(t);
  EXPECT_EQ(DivideConquerSkylineIndices(spec, rows.data(), t.row_count()),
            NaiveSkylineIndices(spec, rows.data(), t.row_count()));
}

TEST_F(DivideConquerTest, EmptyAndSingleton) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {}));
  SkylineSpec spec = MaxSpec(t, 2);
  EXPECT_TRUE(DivideConquerSkylineIndices(spec, nullptr, 0).empty());
  ASSERT_OK_AND_ASSIGN(Table t1, MakeIntTable(env_.get(), "t1", 2, {{1, 1}}));
  std::vector<char> rows = testing_util::ReadAll(t1);
  EXPECT_EQ(DivideConquerSkylineIndices(spec, rows.data(), 1),
            (std::vector<uint64_t>{0}));
}

TEST_F(DivideConquerTest, TableConvenienceWrapper) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 500, 3, 27, 0));
  SkylineSpec spec = MaxSpec(t, 3);
  ASSERT_OK_AND_ASSIGN(std::vector<char> sky, DivideConquerSkylineRows(t, spec));
  ASSERT_OK_AND_ASSIGN(std::vector<char> want, NaiveSkylineRows(t, spec));
  EXPECT_EQ(sky, want);
}

}  // namespace
}  // namespace skyline
