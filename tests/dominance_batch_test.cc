#include "core/dominance_batch.h"

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/dominance.h"
#include "gtest/gtest.h"
#include "relation/row.h"
#include "test_util.h"

namespace skyline {
namespace {

// The batched kernels must agree bit-for-bit with CompareDominance — the
// scalar comparator is the ground truth the whole engine's correctness
// rests on. These tests relate random probes to random entry sets through
// every available kernel and check each entry's mask bit against the
// scalar verdict, across MIN/MAX mixes, DIFF specs, and counts straddling
// the 64-entry block boundary.

/// Packed int32 rows: schema a0..a{k-1}, values at byte offset 4*i.
std::vector<char> PackRow(const Schema& schema,
                          const std::vector<int32_t>& values) {
  std::vector<char> row(schema.row_width(), 0);
  for (size_t i = 0; i < values.size(); ++i) {
    std::memcpy(row.data() + 4 * i, &values[i], 4);
  }
  return row;
}

Schema IntSchema(int num_attrs) {
  std::vector<ColumnDef> cols;
  for (int i = 0; i < num_attrs; ++i) {
    cols.push_back(ColumnDef::Int32("a" + std::to_string(i)));
  }
  auto schema = Schema::Make(cols);
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

/// Relates `probe` to every entry through `index` (all blocks) and checks
/// each entry's mask bits against CompareDominance.
void CheckAgainstScalar(const SkylineSpec& spec, const DominanceIndex& index,
                        const std::vector<std::vector<char>>& rows,
                        const char* probe, const std::string& context) {
  ASSERT_TRUE(index.columnar());
  DominanceIndex::Probe keys;
  index.EncodeProbe(probe, &keys);
  const size_t n = rows.size();
  for (size_t b = 0; b < DominanceIndex::BlockCountFor(n); ++b) {
    const BlockMasks masks = index.TestBlock(keys, b, n);
    // A pruned block must have proven itself unrelated.
    if (index.CanPruneBlock(keys, b)) {
      EXPECT_EQ(masks.dominates, 0u) << context;
      EXPECT_EQ(masks.dominated, 0u) << context;
      EXPECT_EQ(masks.equal, 0u) << context;
    }
    const size_t base = b * DominanceIndex::kBlockEntries;
    for (size_t lane = 0; lane < DominanceIndex::kBlockEntries; ++lane) {
      const size_t i = base + lane;
      const bool dominates = (masks.dominates >> lane) & 1;
      const bool dominated = (masks.dominated >> lane) & 1;
      const bool equal = (masks.equal >> lane) & 1;
      if (i >= n) {
        // Lanes past the live count must be masked off.
        EXPECT_FALSE(dominates || dominated || equal)
            << context << " ghost lane " << i;
        continue;
      }
      const DomResult expected = CompareDominance(spec, rows[i].data(), probe);
      EXPECT_EQ(dominates, expected == DomResult::kFirstDominates)
          << context << " entry " << i;
      EXPECT_EQ(dominated, expected == DomResult::kSecondDominates)
          << context << " entry " << i;
      EXPECT_EQ(equal, expected == DomResult::kEquivalent)
          << context << " entry " << i;
    }
  }
}

TEST(DominanceBatchTest, AvailableKernelsIncludeScalar) {
  const auto& kernels = AvailableDominanceKernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels.front()->name, "scalar");
  // The active kernel is one of the available ones.
  bool found = false;
  for (const DominanceKernel* k : kernels) {
    if (k == &ActiveDominanceKernel()) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DominanceBatchTest, DifferentialFuzzAcrossKernels) {
  Random rng(20260806);
  // Counts straddle the block boundary (63/64/65) plus small and
  // multi-block sizes; dims cover 1..8 with random MIN/MAX mixes.
  const size_t kCounts[] = {1, 7, 63, 64, 65, 130};
  for (size_t count : kCounts) {
    for (int dims : {1, 2, 5, 8}) {
      Schema schema = IntSchema(dims);
      std::vector<Criterion> directives;
      for (int d = 0; d < dims; ++d) {
        directives.push_back({"a" + std::to_string(d),
                              rng.Uniform(2) == 0 ? Directive::kMin
                                                  : Directive::kMax});
      }
      auto spec_or = SkylineSpec::Make(schema, directives);
      ASSERT_TRUE(spec_or.ok());
      const SkylineSpec spec = std::move(spec_or).value();

      // Narrow range forces frequent dominance/equality; a sprinkle of
      // INT32_MIN/INT32_MAX exercises the ~v order transform at the
      // extremes.
      auto draw = [&]() -> int32_t {
        const uint64_t kind = rng.Uniform(16);
        if (kind == 0) return INT32_MIN;
        if (kind == 1) return INT32_MAX;
        return rng.UniformInt32(0, 7);
      };
      std::vector<std::vector<char>> rows;
      for (size_t i = 0; i < count; ++i) {
        std::vector<int32_t> values(dims);
        for (int d = 0; d < dims; ++d) values[d] = draw();
        rows.push_back(PackRow(schema, values));
      }

      for (const DominanceKernel* kernel : AvailableDominanceKernels()) {
        DominanceIndex index(&spec, kernel);
        ASSERT_TRUE(index.columnar());
        for (const auto& row : rows) index.Append(row.data());
        for (int p = 0; p < 8; ++p) {
          std::vector<int32_t> values(dims);
          for (int d = 0; d < dims; ++d) values[d] = draw();
          const std::vector<char> probe = PackRow(schema, values);
          CheckAgainstScalar(spec, index, rows, probe.data(),
                             std::string(kernel->name) + " count=" +
                                 std::to_string(count) + " dims=" +
                                 std::to_string(dims));
        }
      }
    }
  }
}

TEST(DominanceBatchTest, DiffColumnsGateComparability) {
  Random rng(7);
  Schema schema = IntSchema(4);
  auto spec_or = SkylineSpec::Make(schema, {{"a0", Directive::kDiff},
                                           {"a1", Directive::kMax},
                                           {"a2", Directive::kMin},
                                           {"a3", Directive::kDiff}});
  ASSERT_TRUE(spec_or.ok());
  const SkylineSpec spec = std::move(spec_or).value();

  std::vector<std::vector<char>> rows;
  for (size_t i = 0; i < 65; ++i) {
    rows.push_back(PackRow(
        schema, {static_cast<int32_t>(rng.Uniform(3)), rng.UniformInt32(0, 4),
                 rng.UniformInt32(0, 4), static_cast<int32_t>(rng.Uniform(2))}));
  }
  for (const DominanceKernel* kernel : AvailableDominanceKernels()) {
    DominanceIndex index(&spec, kernel);
    ASSERT_TRUE(index.columnar());
    for (const auto& row : rows) index.Append(row.data());
    for (int p = 0; p < 16; ++p) {
      const std::vector<char> probe = PackRow(
          schema,
          {static_cast<int32_t>(rng.Uniform(3)), rng.UniformInt32(0, 4),
           rng.UniformInt32(0, 4), static_cast<int32_t>(rng.Uniform(2))});
      CheckAgainstScalar(spec, index, rows, probe.data(),
                         std::string("diff/") + kernel->name);
    }
  }
}

TEST(DominanceBatchTest, ReplaceAndRemoveKeepScalarAgreement) {
  // ReplaceAt widens zone maps without re-tightening and RemoveSwapLast
  // mirrors BNL eviction; verdicts must stay exact through both.
  Random rng(99);
  Schema schema = IntSchema(3);
  auto spec_or = SkylineSpec::Make(schema, {{"a0", Directive::kMax},
                                           {"a1", Directive::kMin},
                                           {"a2", Directive::kMax}});
  ASSERT_TRUE(spec_or.ok());
  const SkylineSpec spec = std::move(spec_or).value();

  auto random_row = [&]() {
    return PackRow(schema, {rng.UniformInt32(0, 9), rng.UniformInt32(0, 9),
                            rng.UniformInt32(0, 9)});
  };
  std::vector<std::vector<char>> rows;
  DominanceIndex index(&spec);
  ASSERT_TRUE(index.columnar());
  for (size_t i = 0; i < 100; ++i) {
    rows.push_back(random_row());
    index.Append(rows.back().data());
  }
  for (int step = 0; step < 200; ++step) {
    if (rows.size() > 1 && rng.Uniform(3) == 0) {
      const size_t victim = rng.Uniform(rows.size());
      rows[victim] = rows.back();
      rows.pop_back();
      index.RemoveSwapLast(victim);
    } else {
      const size_t target = rng.Uniform(rows.size());
      rows[target] = random_row();
      index.ReplaceAt(target, rows[target].data());
    }
    ASSERT_EQ(index.size(), rows.size());
    const std::vector<char> probe = random_row();
    CheckAgainstScalar(spec, index, rows, probe.data(),
                       "mutate step " + std::to_string(step));
  }
}

TEST(DominanceBatchTest, AllCriterionTypesTakeColumnarPath) {
  // The order-key transform lowers every criterion type — int64 and
  // float64 values, string and float64 DIFFs — to comparable integer
  // lanes, so these specs run on the columnar kernels instead of the old
  // row-at-a-time fallback.
  auto schema_or = Schema::Make(
      {ColumnDef::Int32("a"), ColumnDef::Float64("f"), ColumnDef::Int64("l"),
       ColumnDef::FixedString("s", 8)});
  ASSERT_TRUE(schema_or.ok());
  const Schema schema = std::move(schema_or).value();
  for (const auto& directives : std::vector<std::vector<Criterion>>{
           {{"a", Directive::kMax}, {"f", Directive::kMin}},
           {{"a", Directive::kMax}, {"l", Directive::kMin}},
           {{"f", Directive::kDiff}, {"a", Directive::kMax}},
           {{"l", Directive::kDiff}, {"f", Directive::kMax}},
           {{"s", Directive::kDiff}, {"a", Directive::kMax}}}) {
    auto spec_or = SkylineSpec::Make(schema, directives);
    ASSERT_TRUE(spec_or.ok());
    const SkylineSpec spec = std::move(spec_or).value();
    DominanceIndex index(&spec);
    EXPECT_TRUE(index.columnar());
  }
}

TEST(DominanceBatchTest, ForceRowPathDisablesColumnar) {
  Schema schema = IntSchema(2);
  auto spec_or = SkylineSpec::Make(
      schema, {{"a0", Directive::kMax}, {"a1", Directive::kMin}});
  ASSERT_TRUE(spec_or.ok());
  const SkylineSpec spec = std::move(spec_or).value();
  SetForceRowDominancePath(true);
  {
    DominanceIndex index(&spec);
    EXPECT_FALSE(index.columnar());
    // Mutators are no-ops on a non-columnar index.
    std::vector<char> row(schema.row_width(), 0);
    index.Append(row.data());
    EXPECT_EQ(index.size(), 0u);
  }
  SetForceRowDominancePath(false);
  DominanceIndex index(&spec);
  EXPECT_TRUE(index.columnar());
}

TEST(DominanceBatchTest, MixedTypeDifferentialFuzzAcrossKernels) {
  // Full-width coverage of the order-key transform: int32/int64/float64
  // value lanes plus a dictionary-encoded string DIFF and an int64 DIFF,
  // with special values at every cliff edge — NaN/±inf/-0.0 for the
  // total-order float key, >2^53 magnitudes for the native int64 lanes.
  auto schema_or = Schema::Make(
      {ColumnDef::Int32("a"), ColumnDef::Float64("f"), ColumnDef::Int64("l"),
       ColumnDef::FixedString("s", 8), ColumnDef::Float64("g")});
  ASSERT_TRUE(schema_or.ok());
  const Schema schema = std::move(schema_or).value();
  auto spec_or = SkylineSpec::Make(schema, {{"s", Directive::kDiff},
                                           {"a", Directive::kMax},
                                           {"f", Directive::kMin},
                                           {"l", Directive::kMax},
                                           {"g", Directive::kMax}});
  ASSERT_TRUE(spec_or.ok());
  const SkylineSpec spec = std::move(spec_or).value();

  Random rng(20260808);
  const double kDoubles[] = {0.0,
                             -0.0,
                             1.5,
                             -1.5,
                             2.0,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN()};
  // Includes pairs that collide when widened to double (differ only below
  // 2^53 precision) — the native int64 lanes must still separate them.
  const int64_t kInt64s[] = {0,
                             -1,
                             (int64_t{1} << 53) + 1,
                             (int64_t{1} << 53) + 2,
                             -((int64_t{1} << 53) + 1),
                             int64_t{1} << 62};
  const char* kStrings[] = {"ansel", "brill", "cove"};

  auto make_row = [&](RowBuffer* row) {
    row->SetInt32(0, rng.UniformInt32(0, 3));
    row->SetFloat64(1, kDoubles[rng.Uniform(8)]);
    row->SetInt64(2, kInt64s[rng.Uniform(6)]);
    row->SetString(3, kStrings[rng.Uniform(3)]);
    row->SetFloat64(4, kDoubles[rng.Uniform(8)]);
  };

  const size_t kCounts[] = {1, 63, 64, 65, 130};
  for (size_t count : kCounts) {
    std::vector<std::vector<char>> rows;
    RowBuffer buffer(&schema);
    for (size_t i = 0; i < count; ++i) {
      make_row(&buffer);
      rows.emplace_back(buffer.data(), buffer.data() + buffer.size());
    }
    for (const DominanceKernel* kernel : AvailableDominanceKernels()) {
      DominanceIndex index(&spec, kernel);
      ASSERT_TRUE(index.columnar());
      for (const auto& row : rows) index.Append(row.data());
      for (int p = 0; p < 12; ++p) {
        make_row(&buffer);
        CheckAgainstScalar(spec, index, rows, buffer.data(),
                           std::string("mixed/") + kernel->name +
                               " count=" + std::to_string(count));
      }
      // A probe whose string was never appended has no dictionary code:
      // it must compare unrelated-and-unequal to every entry.
      buffer.SetString(3, "unseen");
      DominanceIndex::Probe keys;
      index.EncodeProbe(buffer.data(), &keys);
      for (size_t b = 0; b < DominanceIndex::BlockCountFor(rows.size()); ++b) {
        const BlockMasks masks = index.TestBlock(keys, b, rows.size());
        EXPECT_EQ(masks.dominates, 0u);
        EXPECT_EQ(masks.dominated, 0u);
        EXPECT_EQ(masks.equal, 0u);
      }
    }
  }
}

TEST(DominanceBatchTest, TooManyColumnsFallBackToRowPath) {
  const int dims = static_cast<int>(DominanceIndex::kMaxColumns) + 1;
  Schema schema = IntSchema(dims);
  std::vector<Criterion> directives;
  for (int d = 0; d < dims; ++d) {
    directives.push_back({"a" + std::to_string(d), Directive::kMax});
  }
  auto spec_or = SkylineSpec::Make(schema, directives);
  ASSERT_TRUE(spec_or.ok());
  const SkylineSpec spec = std::move(spec_or).value();
  DominanceIndex index(&spec);
  EXPECT_FALSE(index.columnar());
}

}  // namespace
}  // namespace skyline
