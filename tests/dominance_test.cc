#include "core/dominance.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;

class DominanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = Schema::Make({ColumnDef::Int32("a0"), ColumnDef::Int32("a1"),
                                ColumnDef::Int32("a2")});
    ASSERT_TRUE(schema.ok());
    schema_ = std::move(schema).value();
  }

  SkylineSpec MakeSpec(std::vector<Criterion> criteria) {
    auto result = SkylineSpec::Make(schema_, std::move(criteria));
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::vector<char> Row(int32_t a, int32_t b, int32_t c) {
    std::vector<char> row(12);
    std::memcpy(row.data(), &a, 4);
    std::memcpy(row.data() + 4, &b, 4);
    std::memcpy(row.data() + 8, &c, 4);
    return row;
  }

  Schema schema_;
};

TEST_F(DominanceTest, StrictDominanceAllMax) {
  SkylineSpec spec = MakeSpec({{"a0", Directive::kMax},
                               {"a1", Directive::kMax},
                               {"a2", Directive::kMax}});
  auto hi = Row(3, 3, 3), lo = Row(1, 2, 3);
  EXPECT_EQ(CompareDominance(spec, hi.data(), lo.data()),
            DomResult::kFirstDominates);
  EXPECT_EQ(CompareDominance(spec, lo.data(), hi.data()),
            DomResult::kSecondDominates);
  EXPECT_TRUE(Dominates(spec, hi.data(), lo.data()));
  EXPECT_FALSE(Dominates(spec, lo.data(), hi.data()));
}

TEST_F(DominanceTest, DominanceNeedsOneStrictImprovement) {
  SkylineSpec spec = MakeSpec({{"a0", Directive::kMax},
                               {"a1", Directive::kMax},
                               {"a2", Directive::kMax}});
  auto a = Row(2, 2, 2), b = Row(2, 2, 1);
  EXPECT_EQ(CompareDominance(spec, a.data(), b.data()),
            DomResult::kFirstDominates);
}

TEST_F(DominanceTest, EquivalentRows) {
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kMax}, {"a1", Directive::kMax}});
  auto a = Row(2, 2, 99), b = Row(2, 2, -5);  // a2 not a criterion
  EXPECT_EQ(CompareDominance(spec, a.data(), b.data()),
            DomResult::kEquivalent);
  EXPECT_FALSE(Dominates(spec, a.data(), b.data()));
}

TEST_F(DominanceTest, IncomparableRows) {
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kMax}, {"a1", Directive::kMax}});
  auto a = Row(4, 1, 0), b = Row(1, 4, 0);
  EXPECT_EQ(CompareDominance(spec, a.data(), b.data()),
            DomResult::kIncomparable);
  EXPECT_EQ(CompareDominance(spec, b.data(), a.data()),
            DomResult::kIncomparable);
}

TEST_F(DominanceTest, MinDirectionFlips) {
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kMin}, {"a1", Directive::kMax}});
  auto cheap_good = Row(1, 9, 0), pricey_bad = Row(5, 3, 0);
  EXPECT_EQ(CompareDominance(spec, cheap_good.data(), pricey_bad.data()),
            DomResult::kFirstDominates);
  // Low a0 + low a1 vs high a0 + high a1: incomparable.
  auto cheap_bad = Row(1, 3, 0), pricey_good = Row(5, 9, 0);
  EXPECT_EQ(CompareDominance(spec, cheap_bad.data(), pricey_good.data()),
            DomResult::kIncomparable);
}

TEST_F(DominanceTest, DiffGroupsAreIncomparable) {
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kDiff}, {"a1", Directive::kMax}});
  auto g1_hi = Row(1, 9, 0), g2_lo = Row(2, 1, 0);
  EXPECT_EQ(CompareDominance(spec, g1_hi.data(), g2_lo.data()),
            DomResult::kIncomparable);
  auto g1_lo = Row(1, 1, 0);
  EXPECT_EQ(CompareDominance(spec, g1_hi.data(), g1_lo.data()),
            DomResult::kFirstDominates);
}

TEST_F(DominanceTest, PaperRestaurantExample) {
  // Brearton Grill is dominated by Zakopane; Fenton & Pickle dominates
  // Briar Patch BBQ; Summer Moon does NOT dominate Brearton Grill
  // (worse decor).
  auto env = NewMemEnv();
  auto guide = MakeGoodEatsTable(env.get(), "g");
  ASSERT_TRUE(guide.ok());
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(guide->schema(), {{"S", Directive::kMax},
                                          {"F", Directive::kMax},
                                          {"D", Directive::kMax},
                                          {"price", Directive::kMin}}));
  std::vector<char> rows = testing_util::ReadAll(*guide);
  const size_t w = guide->schema().row_width();
  const char* summer_moon = rows.data() + 0 * w;
  const char* zakopane = rows.data() + 1 * w;
  const char* brearton = rows.data() + 2 * w;
  const char* fenton = rows.data() + 4 * w;
  const char* briar = rows.data() + 5 * w;
  EXPECT_TRUE(Dominates(spec, zakopane, brearton));
  EXPECT_TRUE(Dominates(spec, fenton, briar));
  EXPECT_FALSE(Dominates(spec, summer_moon, brearton));
  EXPECT_EQ(CompareDominance(spec, summer_moon, zakopane),
            DomResult::kIncomparable);
}

TEST_F(DominanceTest, TransitivityRandomized) {
  SkylineSpec spec = MakeSpec({{"a0", Directive::kMax},
                               {"a1", Directive::kMin},
                               {"a2", Directive::kMax}});
  Random rng(3);
  int checked = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    auto a = Row(rng.UniformInt32(0, 4), rng.UniformInt32(0, 4),
                 rng.UniformInt32(0, 4));
    auto b = Row(rng.UniformInt32(0, 4), rng.UniformInt32(0, 4),
                 rng.UniformInt32(0, 4));
    auto c = Row(rng.UniformInt32(0, 4), rng.UniformInt32(0, 4),
                 rng.UniformInt32(0, 4));
    if (Dominates(spec, a.data(), b.data()) &&
        Dominates(spec, b.data(), c.data())) {
      EXPECT_TRUE(Dominates(spec, a.data(), c.data()));
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);  // the domain is small enough to hit chains
}

TEST_F(DominanceTest, AntisymmetryRandomized) {
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kMax}, {"a1", Directive::kMax}});
  Random rng(4);
  for (int trial = 0; trial < 1000; ++trial) {
    auto a = Row(rng.UniformInt32(0, 9), rng.UniformInt32(0, 9), 0);
    auto b = Row(rng.UniformInt32(0, 9), rng.UniformInt32(0, 9), 0);
    EXPECT_FALSE(Dominates(spec, a.data(), b.data()) &&
                 Dominates(spec, b.data(), a.data()));
  }
}

TEST_F(DominanceTest, DominanceNumber) {
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kMax}, {"a1", Directive::kMax}});
  std::vector<char> rows;
  for (auto [a, b] : std::vector<std::pair<int, int>>{
           {3, 3}, {1, 1}, {2, 1}, {0, 0}, {3, 0}}) {
    auto r = Row(a, b, 0);
    rows.insert(rows.end(), r.begin(), r.end());
  }
  auto top = Row(3, 3, 0);
  // (3,3) dominates (1,1), (2,1), (0,0), (3,0) but not itself.
  EXPECT_EQ(DominanceNumber(spec, top.data(), rows.data(), 5), 4u);
  auto mid = Row(2, 1, 0);
  EXPECT_EQ(DominanceNumber(spec, mid.data(), rows.data(), 5), 2u);
  auto bottom = Row(0, 0, 0);
  EXPECT_EQ(DominanceNumber(spec, bottom.data(), rows.data(), 5), 0u);
}

}  // namespace
}  // namespace skyline
