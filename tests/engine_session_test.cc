#include "sql/engine.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/canonical_order.h"
#include "core/compute_skyline.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

// Engine + Session: the result cache (keying, hit/miss/byte-identity,
// LRU), the maintenance write path (insert patching, delete repair or
// invalidation), and the service guarantee the whole design hangs on —
// a cached response is byte-identical to a cold recompute at the same
// table version, before and after every mutation.

class EngineSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    Engine::Options options;
    options.env = env_.get();
    options.write_sidecars = false;
    engine_ = std::make_unique<Engine>(options);
  }

  /// A small table with a known shape: maximizing a and b, c is payload.
  Status CreateDemoTable() {
    return engine_->CreateTableFromCsv("T",
                                       "a,b,c\n"
                                       "5,1,10\n"
                                       "1,5,20\n"
                                       "3,3,30\n"
                                       "2,2,40\n"   // dominated by (3,3)
                                       "1,1,50\n"); // dominated by all
  }

  /// Runs `sql` through a fresh Session and returns the concatenated raw
  /// row bytes (full-width rows).
  Result<std::string> Collect(const std::string& sql,
                              Session::Outcome* outcome = nullptr) {
    Session session(engine_.get());
    std::string bytes;
    SKYLINE_RETURN_IF_ERROR(session.Execute(
        sql,
        [&bytes](const RowView& row) {
          bytes.append(row.data(), row.schema().row_width());
          return Status::OK();
        },
        outcome));
    return bytes;
  }

  /// Cold reference: recomputes the skyline of the table's *current*
  /// version from scratch (no cache) and returns it in canonical order —
  /// what every cached or patched response must match byte for byte.
  Result<std::string> ColdSkyline(const std::string& table,
                                  const std::vector<Criterion>& criteria) {
    SKYLINE_ASSIGN_OR_RETURN(Engine::TableSnapshot snapshot,
                             engine_->Snapshot(table));
    SKYLINE_ASSIGN_OR_RETURN(
        SkylineSpec spec,
        SkylineSpec::Make(snapshot.table->schema(), criteria));
    const std::string path = "cold/ref" + std::to_string(++cold_seq_);
    SKYLINE_ASSIGN_OR_RETURN(
        Table result, ComputeSkyline(SkylineAlgorithm::kSfs, *snapshot.table,
                                     spec, ExecContext(), path, nullptr));
    std::vector<char> rows;
    SKYLINE_RETURN_IF_ERROR(result.ReadAllRows(&rows));
    SortSkylineRowsCanonical(spec, &rows);
    return std::string(rows.data(), rows.size());
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<Engine> engine_;
  int cold_seq_ = 0;
};

const char kSkylineQuery[] = "SELECT * FROM T SKYLINE OF a MAX, b MAX";
const std::vector<Criterion> kCriteria = {{"a", Directive::kMax},
                                          {"b", Directive::kMax}};

TEST_F(EngineSessionTest, MissThenHitByteIdentical) {
  ASSERT_OK(CreateDemoTable());
  Session::Outcome first, second;
  ASSERT_OK_AND_ASSIGN(std::string cold, Collect(kSkylineQuery, &first));
  ASSERT_OK_AND_ASSIGN(std::string warm, Collect(kSkylineQuery, &second));
  EXPECT_TRUE(first.cache_eligible);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.rows_emitted, 3u);
  EXPECT_EQ(warm, cold);
  const Engine::CacheCounters counters = engine_->cache_counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, 1u);
  ASSERT_OK_AND_ASSIGN(std::string reference, ColdSkyline("T", kCriteria));
  EXPECT_EQ(cold, reference);
}

TEST_F(EngineSessionTest, ConstrainedQueriesKeySeparately) {
  ASSERT_OK(CreateDemoTable());
  const std::string constrained =
      "SELECT * FROM T WHERE a <= 3 SKYLINE OF a MAX, b MAX";
  ASSERT_OK_AND_ASSIGN(std::string full, Collect(kSkylineQuery));
  ASSERT_OK_AND_ASSIGN(std::string boxed, Collect(constrained));
  EXPECT_NE(full, boxed);  // (5,1) is outside the box
  EXPECT_EQ(engine_->cache_size(), 2u);
  // Both entries serve hits now.
  Session::Outcome outcome;
  ASSERT_OK_AND_ASSIGN(std::string boxed2, Collect(constrained, &outcome));
  EXPECT_TRUE(outcome.cache_hit);
  EXPECT_EQ(boxed2, boxed);
}

TEST_F(EngineSessionTest, ProjectionAndLimitApplyOnCachedPath) {
  ASSERT_OK(CreateDemoTable());
  ASSERT_OK_AND_ASSIGN(std::string ignored, Collect(kSkylineQuery));
  Session::Outcome outcome;
  ASSERT_OK_AND_ASSIGN(
      std::string projected,
      Collect("SELECT c FROM T SKYLINE OF a MAX, b MAX LIMIT 2", &outcome));
  EXPECT_TRUE(outcome.cache_hit);  // projection/limit do not change the key
  EXPECT_EQ(outcome.rows_emitted, 2u);
  EXPECT_EQ(projected.size(), 2u * sizeof(int32_t));
}

TEST_F(EngineSessionTest, InsertPatchesCachedEntry) {
  ASSERT_OK(CreateDemoTable());
  ASSERT_OK_AND_ASSIGN(std::string before, Collect(kSkylineQuery));

  Session::Outcome write;
  ASSERT_OK_AND_ASSIGN(std::string empty,
                       Collect("INSERT INTO T VALUES (6, 6, 60)", &write));
  EXPECT_TRUE(write.write);
  EXPECT_EQ(write.rows_affected, 1u);
  EXPECT_EQ(write.mutation.version, 2u);
  EXPECT_EQ(write.mutation.entries_patched, 1u);
  EXPECT_EQ(write.mutation.entries_invalidated, 0u);

  // The patched entry serves as a *hit* at the new version and matches a
  // cold recompute byte for byte — (6,6) dominates everything.
  Session::Outcome read;
  ASSERT_OK_AND_ASSIGN(std::string after, Collect(kSkylineQuery, &read));
  EXPECT_TRUE(read.cache_hit);
  EXPECT_NE(after, before);
  EXPECT_EQ(read.rows_emitted, 1u);
  ASSERT_OK_AND_ASSIGN(std::string reference, ColdSkyline("T", kCriteria));
  EXPECT_EQ(after, reference);
  EXPECT_EQ(engine_->cache_counters().patched, 1u);
}

TEST_F(EngineSessionTest, DominatedInsertKeepsSkylineByteIdentical) {
  ASSERT_OK(CreateDemoTable());
  ASSERT_OK_AND_ASSIGN(std::string before, Collect(kSkylineQuery));
  ASSERT_OK_AND_ASSIGN(std::string empty,
                       Collect("INSERT INTO T VALUES (1, 1, 70)"));
  Session::Outcome read;
  ASSERT_OK_AND_ASSIGN(std::string after, Collect(kSkylineQuery, &read));
  EXPECT_TRUE(read.cache_hit);
  EXPECT_EQ(after, before);
  ASSERT_OK_AND_ASSIGN(std::string reference, ColdSkyline("T", kCriteria));
  EXPECT_EQ(after, reference);
}

TEST_F(EngineSessionTest, DeleteOfNonMemberPatchesInPlace) {
  ASSERT_OK(CreateDemoTable());
  ASSERT_OK_AND_ASSIGN(std::string before, Collect(kSkylineQuery));
  Session::Outcome write;
  ASSERT_OK_AND_ASSIGN(std::string empty,
                       Collect("DELETE FROM T WHERE c = 40", &write));
  EXPECT_EQ(write.rows_affected, 1u);
  EXPECT_EQ(write.mutation.entries_patched, 1u);
  EXPECT_EQ(write.mutation.entries_repaired, 0u);
  Session::Outcome read;
  ASSERT_OK_AND_ASSIGN(std::string after, Collect(kSkylineQuery, &read));
  EXPECT_TRUE(read.cache_hit);
  EXPECT_EQ(after, before);  // dominated rows never influence the skyline
}

TEST_F(EngineSessionTest, DeleteOfMemberRepairsInline) {
  ASSERT_OK(CreateDemoTable());
  ASSERT_OK_AND_ASSIGN(std::string before, Collect(kSkylineQuery));
  Session::Outcome write;
  ASSERT_OK_AND_ASSIGN(std::string empty,
                       Collect("DELETE FROM T WHERE a = 3", &write));
  EXPECT_EQ(write.rows_affected, 1u);
  EXPECT_EQ(write.mutation.entries_patched, 0u);
  EXPECT_EQ(write.mutation.entries_repaired, 1u);
  // (3,3) left the skyline; (2,2) resurfaces — only a recompute over the
  // base data can know that, which is exactly what the repair did.
  Session::Outcome read;
  ASSERT_OK_AND_ASSIGN(std::string after, Collect(kSkylineQuery, &read));
  EXPECT_TRUE(read.cache_hit);
  EXPECT_NE(after, before);
  EXPECT_EQ(read.rows_emitted, 3u);
  ASSERT_OK_AND_ASSIGN(std::string reference, ColdSkyline("T", kCriteria));
  EXPECT_EQ(after, reference);
  EXPECT_EQ(engine_->cache_counters().repaired, 1u);
}

TEST_F(EngineSessionTest, DeleteOfMemberInvalidatesWhenRepairOff) {
  Engine::Options options;
  options.env = env_.get();
  options.write_sidecars = false;
  options.repair_deletes = false;
  engine_ = std::make_unique<Engine>(options);
  ASSERT_OK(CreateDemoTable());
  ASSERT_OK_AND_ASSIGN(std::string warmup, Collect(kSkylineQuery));

  Session::Outcome write;
  ASSERT_OK_AND_ASSIGN(std::string empty,
                       Collect("DELETE FROM T WHERE a = 3", &write));
  EXPECT_EQ(write.mutation.entries_repaired, 0u);
  EXPECT_EQ(write.mutation.entries_invalidated, 1u);
  EXPECT_EQ(engine_->cache_size(), 0u);

  // The next query refills from the new version — still correct.
  Session::Outcome read;
  ASSERT_OK_AND_ASSIGN(std::string after, Collect(kSkylineQuery, &read));
  EXPECT_FALSE(read.cache_hit);
  ASSERT_OK_AND_ASSIGN(std::string reference, ColdSkyline("T", kCriteria));
  EXPECT_EQ(after, reference);
}

TEST_F(EngineSessionTest, LruEvictsAtCapacity) {
  Engine::Options options;
  options.env = env_.get();
  options.write_sidecars = false;
  options.result_cache_capacity = 1;
  engine_ = std::make_unique<Engine>(options);
  ASSERT_OK(CreateDemoTable());
  ASSERT_OK_AND_ASSIGN(std::string q1, Collect(kSkylineQuery));
  ASSERT_OK_AND_ASSIGN(std::string q2,
                       Collect("SELECT * FROM T SKYLINE OF a MIN, b MIN"));
  EXPECT_EQ(engine_->cache_size(), 1u);
  EXPECT_EQ(engine_->cache_counters().evictions, 1u);
  // The first query was evicted: it misses again (and stays correct).
  Session::Outcome outcome;
  ASSERT_OK_AND_ASSIGN(std::string q1_again, Collect(kSkylineQuery, &outcome));
  EXPECT_FALSE(outcome.cache_hit);
  EXPECT_EQ(q1_again, q1);
}

TEST_F(EngineSessionTest, OrderByAndResidualPredicatesBypassTheCache) {
  ASSERT_OK(CreateDemoTable());
  Session::Outcome ordered;
  ASSERT_OK_AND_ASSIGN(
      std::string rows1,
      Collect("SELECT * FROM T SKYLINE OF a MAX, b MAX ORDER BY c", &ordered));
  EXPECT_FALSE(ordered.cache_eligible);
  // c != 10 cannot push into the constraint box, so the statement runs
  // through the pipeline even though it has a skyline clause.
  Session::Outcome residual;
  ASSERT_OK_AND_ASSIGN(
      std::string rows2,
      Collect("SELECT * FROM T WHERE c != 10 SKYLINE OF a MAX, b MAX",
              &residual));
  EXPECT_FALSE(residual.cache_eligible);
  EXPECT_EQ(engine_->cache_size(), 0u);
}

TEST_F(EngineSessionTest, WritesToUnknownTableFail) {
  ASSERT_OK(CreateDemoTable());
  Session session(engine_.get());
  auto visitor = [](const RowView&) { return Status::OK(); };
  EXPECT_TRUE(session.Execute("INSERT INTO missing VALUES (1)", visitor)
                  .IsNotFound());
  EXPECT_TRUE(session.Execute("DELETE FROM missing", visitor).IsNotFound());
}

TEST_F(EngineSessionTest, InsertRejectsOversizedStringInsteadOfTruncating) {
  // The fixed-string width is inferred from the CSV (here str[2]); an
  // over-long literal must error like a numeric out-of-range does, not
  // silently truncate.
  ASSERT_OK(engine_->CreateTableFromCsv("S", "name,score\naa,1\nbb,2\n"));
  Session session(engine_.get());
  auto visitor = [](const RowView&) { return Status::OK(); };
  Status status =
      session.Execute("INSERT INTO S VALUES ('too-long', 3)", visitor);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  ASSERT_OK_AND_ASSIGN(Engine::TableSnapshot snapshot, engine_->Snapshot("S"));
  EXPECT_EQ(snapshot.version, 1u);
  EXPECT_OK(session.Execute("INSERT INTO S VALUES ('cc', 3)", visitor));
}

TEST_F(EngineSessionTest, MultiRowInsertAndPredicatelessDelete) {
  ASSERT_OK(CreateDemoTable());
  Session::Outcome insert;
  ASSERT_OK_AND_ASSIGN(
      std::string empty,
      Collect("INSERT INTO T VALUES (7, 1, 80), (1, 7, 90)", &insert));
  EXPECT_EQ(insert.rows_affected, 2u);
  ASSERT_OK_AND_ASSIGN(std::string reference, ColdSkyline("T", kCriteria));
  ASSERT_OK_AND_ASSIGN(std::string rows, Collect(kSkylineQuery));
  EXPECT_EQ(rows, reference);

  Session::Outcome del;
  ASSERT_OK_AND_ASSIGN(std::string empty2, Collect("DELETE FROM T", &del));
  EXPECT_EQ(del.rows_affected, 7u);
  ASSERT_OK_AND_ASSIGN(Engine::TableSnapshot snapshot, engine_->Snapshot("T"));
  EXPECT_EQ(snapshot.table->row_count(), 0u);
  EXPECT_EQ(snapshot.version, 3u);
}

// The service guarantee under concurrency: N sessions issue a mix of
// reads and writes against one table; after every mutation batch the
// writer verifies the served (cached or patched) result is byte-identical
// to a cold ComputeSkyline of the current version. Readers continuously
// hit the cache while mutations rotate the version underneath them.
TEST_F(EngineSessionTest, ConcurrentMixedReadWriteStaysByteIdentical) {
  ASSERT_OK(CreateDemoTable());
  constexpr int kReaders = 4;
  constexpr int kBatches = 12;

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads_ok{0};
  std::atomic<bool> reader_failed{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([this, &done, &reads_ok, &reader_failed] {
      Session session(engine_.get());
      while (!done.load(std::memory_order_acquire)) {
        uint64_t rows = 0;
        Status status = session.Execute(kSkylineQuery,
                                        [&rows](const RowView&) {
                                          ++rows;
                                          return Status::OK();
                                        });
        if (!status.ok() || rows == 0) {
          reader_failed.store(true);
          return;
        }
        reads_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Random rng(4242);
  Session writer(engine_.get());
  auto swallow = [](const RowView&) { return Status::OK(); };
  for (int batch = 0; batch < kBatches && !reader_failed.load(); ++batch) {
    if (batch % 3 == 2) {
      // Delete a random band of payload values; sometimes a member dies
      // and the repair path recomputes the cached entries.
      const int lo = static_cast<int>(rng.Uniform(100));
      std::string sql = "DELETE FROM T WHERE c >= " + std::to_string(lo) +
                        " AND c <= " + std::to_string(lo + 20);
      ASSERT_OK(writer.Execute(sql, swallow));
    } else {
      std::string sql = "INSERT INTO T VALUES";
      for (int i = 0; i < 3; ++i) {
        sql += (i == 0 ? " (" : ", (") + std::to_string(rng.Uniform(50)) +
               ", " + std::to_string(rng.Uniform(50)) + ", " +
               std::to_string(rng.Uniform(100)) + ")";
      }
      ASSERT_OK(writer.Execute(sql, swallow));
    }
    // The mutation is published: the served skyline at this instant must
    // equal a cold recompute of the current version, byte for byte.
    ASSERT_OK_AND_ASSIGN(std::string reference, ColdSkyline("T", kCriteria));
    ASSERT_OK_AND_ASSIGN(std::string served, Collect(kSkylineQuery));
    ASSERT_EQ(served, reference) << "batch " << batch;
  }

  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(reader_failed.load());
  EXPECT_GT(reads_ok.load(), 0u);
  const Engine::CacheCounters counters = engine_->cache_counters();
  EXPECT_GT(counters.hits, 0u);
  EXPECT_GT(counters.patched + counters.repaired + counters.invalidations,
            0u);
}

}  // namespace
}  // namespace skyline
