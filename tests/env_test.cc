#include "env/env.h"

#include <unistd.h>

#include <cstring>
#include <string>

#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

class EnvTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      env_owned_ = NewMemEnv();
      env_ = env_owned_.get();
      prefix_ = "envtest_";
    } else {
      env_ = Env::Posix();
      prefix_ = ::testing::TempDir() + "skyline_envtest_" +
                std::to_string(::getpid()) + "_";
    }
  }

  std::string Path(const std::string& name) { return prefix_ + name; }

  std::unique_ptr<Env> env_owned_;
  Env* env_ = nullptr;
  std::string prefix_;
};

TEST_P(EnvTest, WriteThenRead) {
  std::unique_ptr<WritableFile> w;
  ASSERT_OK(env_->NewWritableFile(Path("a"), &w));
  ASSERT_OK(w->Append("hello", 5));
  ASSERT_OK(w->Append(" world", 6));
  EXPECT_EQ(w->Size(), 11u);
  ASSERT_OK(w->Close());

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_OK(env_->NewRandomAccessFile(Path("a"), &r));
  EXPECT_EQ(r->Size(), 11u);
  char buf[12] = {};
  ASSERT_OK(r->Read(0, 11, buf));
  EXPECT_STREQ(buf, "hello world");
}

TEST_P(EnvTest, ReadAtOffset) {
  std::unique_ptr<WritableFile> w;
  ASSERT_OK(env_->NewWritableFile(Path("b"), &w));
  ASSERT_OK(w->Append("0123456789", 10));
  ASSERT_OK(w->Close());

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_OK(env_->NewRandomAccessFile(Path("b"), &r));
  char buf[4] = {};
  ASSERT_OK(r->Read(3, 3, buf));
  EXPECT_STREQ(buf, "345");
}

TEST_P(EnvTest, ReadPastEndIsOutOfRange) {
  std::unique_ptr<WritableFile> w;
  ASSERT_OK(env_->NewWritableFile(Path("c"), &w));
  ASSERT_OK(w->Append("xy", 2));
  ASSERT_OK(w->Close());

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_OK(env_->NewRandomAccessFile(Path("c"), &r));
  char buf[8];
  EXPECT_TRUE(r->Read(0, 3, buf).IsOutOfRange());
  EXPECT_TRUE(r->Read(2, 1, buf).IsOutOfRange());
}

TEST_P(EnvTest, OpenMissingFileIsNotFound) {
  std::unique_ptr<RandomAccessFile> r;
  EXPECT_TRUE(env_->NewRandomAccessFile(Path("nope"), &r).IsNotFound());
}

TEST_P(EnvTest, FileExistsAndDelete) {
  EXPECT_FALSE(env_->FileExists(Path("d")));
  std::unique_ptr<WritableFile> w;
  ASSERT_OK(env_->NewWritableFile(Path("d"), &w));
  ASSERT_OK(w->Close());
  EXPECT_TRUE(env_->FileExists(Path("d")));
  ASSERT_OK(env_->DeleteFile(Path("d")));
  EXPECT_FALSE(env_->FileExists(Path("d")));
  EXPECT_TRUE(env_->DeleteFile(Path("d")).IsNotFound());
}

TEST_P(EnvTest, FileSize) {
  std::unique_ptr<WritableFile> w;
  ASSERT_OK(env_->NewWritableFile(Path("e"), &w));
  ASSERT_OK(w->Append("abcd", 4));
  ASSERT_OK(w->Close());
  ASSERT_OK_AND_ASSIGN(uint64_t size, env_->FileSize(Path("e")));
  EXPECT_EQ(size, 4u);
  EXPECT_TRUE(env_->FileSize(Path("missing")).status().IsNotFound());
}

TEST_P(EnvTest, TruncateOnRecreate) {
  std::unique_ptr<WritableFile> w;
  ASSERT_OK(env_->NewWritableFile(Path("f"), &w));
  ASSERT_OK(w->Append("long content", 12));
  ASSERT_OK(w->Close());
  ASSERT_OK(env_->NewWritableFile(Path("f"), &w));
  ASSERT_OK(w->Append("hi", 2));
  ASSERT_OK(w->Close());
  ASSERT_OK_AND_ASSIGN(uint64_t size, env_->FileSize(Path("f")));
  EXPECT_EQ(size, 2u);
}

TEST_P(EnvTest, EmptyFile) {
  std::unique_ptr<WritableFile> w;
  ASSERT_OK(env_->NewWritableFile(Path("g"), &w));
  ASSERT_OK(w->Close());
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_OK(env_->NewRandomAccessFile(Path("g"), &r));
  EXPECT_EQ(r->Size(), 0u);
}

TEST_P(EnvTest, CloseIsIdempotent) {
  std::unique_ptr<WritableFile> w;
  ASSERT_OK(env_->NewWritableFile(Path("h"), &w));
  ASSERT_OK(w->Close());
  ASSERT_OK(w->Close());
}

TEST_P(EnvTest, LargeWrite) {
  std::string big(1 << 20, 'z');
  std::unique_ptr<WritableFile> w;
  ASSERT_OK(env_->NewWritableFile(Path("i"), &w));
  ASSERT_OK(w->Append(big.data(), big.size()));
  ASSERT_OK(w->Close());
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_OK(env_->NewRandomAccessFile(Path("i"), &r));
  std::string back(big.size(), '\0');
  ASSERT_OK(r->Read(0, back.size(), back.data()));
  EXPECT_EQ(back, big);
  ASSERT_OK(env_->DeleteFile(Path("i")));
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, EnvTest, ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "MemEnv" : "PosixEnv";
                         });

TEST(MemEnv, IndependentNamespaces) {
  auto env1 = NewMemEnv();
  auto env2 = NewMemEnv();
  std::unique_ptr<WritableFile> w;
  ASSERT_OK(env1->NewWritableFile("x", &w));
  ASSERT_OK(w->Close());
  EXPECT_TRUE(env1->FileExists("x"));
  EXPECT_FALSE(env2->FileExists("x"));
}

TEST(MemEnv, OpenReaderSurvivesDelete) {
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> w;
  ASSERT_OK(env->NewWritableFile("x", &w));
  ASSERT_OK(w->Append("data", 4));
  ASSERT_OK(w->Close());
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_OK(env->NewRandomAccessFile("x", &r));
  ASSERT_OK(env->DeleteFile("x"));
  char buf[4];
  EXPECT_OK(r->Read(0, 4, buf));
}

TEST(Env, SingletonsAreStable) {
  EXPECT_EQ(Env::Memory(), Env::Memory());
  EXPECT_EQ(Env::Posix(), Env::Posix());
  EXPECT_NE(Env::Memory(), Env::Posix());
}

}  // namespace
}  // namespace skyline
