// Failure injection: every multi-pass algorithm must surface storage
// errors as Status — never crash, hang, or silently truncate results.

#include "core/skyline.h"
#include "faulty_env.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::FaultyEnv;
using testing_util::MakeUniformTable;

class ErrorInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_env_ = NewMemEnv();
    faulty_ = std::make_unique<FaultyEnv>(base_env_.get());
    // Build the input through the faulty env with injection disabled, so
    // the table's env routes all later algorithm I/O through the decorator.
    auto t = MakeUniformTable(faulty_.get(), "t", 3000, 5, 201);
    ASSERT_TRUE(t.ok());
    table_.emplace(std::move(t).value());
    auto spec = SkylineSpec::Make(table_->schema(), {{"a0", Directive::kMax},
                                                     {"a1", Directive::kMax},
                                                     {"a2", Directive::kMax},
                                                     {"a3", Directive::kMax},
                                                     {"a4", Directive::kMax}});
    ASSERT_TRUE(spec.ok());
    spec_.emplace(std::move(spec).value());
  }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<FaultyEnv> faulty_;
  std::optional<Table> table_;
  std::optional<SkylineSpec> spec_;
};

TEST_F(ErrorInjectionTest, SfsSurvivesWithoutInjection) {
  ASSERT_OK_AND_ASSIGN(
      Table sky, ComputeSkylineSfs(*table_, *spec_, SfsOptions{}, ExecContext(), "ok", nullptr));
  EXPECT_GT(sky.row_count(), 0u);
}

TEST_F(ErrorInjectionTest, SfsPropagatesWriteFailures) {
  // Sweep the failure point: sort-run writes, spill writes, output writes.
  for (int64_t budget : {0, 1, 5, 20}) {
    faulty_->set_fail_after_writes(budget);
    SfsOptions opts;
    opts.window_pages = 1;
    opts.use_projection = false;
    opts.sort_options.buffer_pages = 4;
    auto result = ComputeSkylineSfs(*table_, *spec_, opts, ExecContext(), "w", nullptr);
    ASSERT_FALSE(result.ok()) << "budget " << budget;
    EXPECT_TRUE(result.status().IsIoError()) << result.status().ToString();
    faulty_->set_fail_after_writes(-1);
  }
}

TEST_F(ErrorInjectionTest, SfsPropagatesReadFailures) {
  for (int64_t budget : {0, 1, 10, 30}) {
    faulty_->set_fail_after_reads(budget);
    SfsOptions opts;
    opts.window_pages = 1;
    opts.use_projection = false;
    opts.sort_options.buffer_pages = 4;
    auto result = ComputeSkylineSfs(*table_, *spec_, opts, ExecContext(), "r", nullptr);
    ASSERT_FALSE(result.ok()) << "budget " << budget;
    EXPECT_TRUE(result.status().IsIoError()) << result.status().ToString();
    faulty_->set_fail_after_reads(-1);
  }
}

TEST_F(ErrorInjectionTest, BnlPropagatesWriteFailures) {
  for (int64_t budget : {0, 2, 4}) {
    faulty_->set_fail_after_writes(budget);
    BnlOptions opts;
    opts.window_pages = 1;
    auto result = ComputeSkylineBnl(*table_, *spec_, opts, ExecContext(), "w", nullptr);
    ASSERT_FALSE(result.ok()) << "budget " << budget;
    EXPECT_TRUE(result.status().IsIoError());
    faulty_->set_fail_after_writes(-1);
  }
}

TEST_F(ErrorInjectionTest, BnlPropagatesReadFailures) {
  faulty_->set_fail_after_reads(5);
  BnlOptions opts;
  opts.window_pages = 1;
  auto result = ComputeSkylineBnl(*table_, *spec_, opts, ExecContext(), "r", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
  faulty_->set_fail_after_reads(-1);
}

TEST_F(ErrorInjectionTest, ExternalSortPropagatesFailures) {
  auto ordering = MakeNestedSkylineOrdering(*spec_);
  for (int64_t budget : {0, 2, 20}) {
    faulty_->set_fail_after_writes(budget);
    TempFileManager tmp(faulty_.get(), "sort_tmp");
    SortOptions opts;
    opts.buffer_pages = 4;
    auto result = SortHeapFile(faulty_.get(), &tmp, table_->path(),
                               table_->schema().row_width(), *ordering, opts,
                               ExecContext(),
                               nullptr);
    ASSERT_FALSE(result.ok()) << "budget " << budget;
    EXPECT_TRUE(result.status().IsIoError());
    faulty_->set_fail_after_writes(-1);
  }
}

TEST_F(ErrorInjectionTest, StrataPropagateFailures) {
  faulty_->set_fail_after_writes(10);
  StrataOptions opts;
  opts.num_strata = 3;
  auto result = ComputeStrataSfs(*table_, *spec_, opts, ExecContext(), "st", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
  faulty_->set_fail_after_writes(-1);
}

TEST_F(ErrorInjectionTest, LessPropagatesFailures) {
  faulty_->set_fail_after_writes(2);
  auto result = ComputeSkylineLess(*table_, *spec_, LessOptions{}, ExecContext(), "l", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
  faulty_->set_fail_after_writes(-1);
}

TEST_F(ErrorInjectionTest, RecoveryAfterInjectionCleared) {
  // A failed run must not poison later runs (temp files cleaned up, state
  // fully local to each call).
  faulty_->set_fail_after_writes(5);
  SfsOptions opts;
  opts.window_pages = 1;
  opts.use_projection = false;
  opts.sort_options.buffer_pages = 4;
  ASSERT_FALSE(ComputeSkylineSfs(*table_, *spec_, opts, ExecContext(), "x", nullptr).ok());
  faulty_->set_fail_after_writes(-1);
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineSfs(*table_, *spec_, opts, ExecContext(), "y", nullptr));
  EXPECT_GT(sky.row_count(), 0u);
}

}  // namespace
}  // namespace skyline
