#include "common/exec_context.h"

#include <atomic>
#include <set>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/compute_skyline.h"
#include "core/sfs.h"
#include "gtest/gtest.h"
#include "sql/engine.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

size_t Hardware() { return ClampThreadsToHardware(0); }

// ---- Pure thread-knob resolution (the table in exec_context.h) ----

TEST(ExecContextTest, UnsetContextDefersToOptionField) {
  ExecContext ctx;
  EXPECT_EQ(ctx.ResolveThreads(1), 1u);
  EXPECT_EQ(ctx.ResolveThreads(0), Hardware());  // option 0 = hardware
  EXPECT_EQ(ctx.ResolveThreads(3), ClampThreadsToHardware(3));
  EXPECT_EQ(ctx.RequestedThreads(7), 7u);  // unclamped passthrough
}

TEST(ExecContextTest, SetContextOverridesOptionField) {
  ExecContext ctx;
  ctx.threads = 1;
  EXPECT_EQ(ctx.ResolveThreads(0), 1u);
  EXPECT_EQ(ctx.ResolveThreads(8), 1u);
  ctx.threads = 0;  // context 0 = hardware, overriding a literal option
  EXPECT_EQ(ctx.ResolveThreads(1), Hardware());
}

TEST(ExecContextTest, ResolveClampsButRequestedDoesNot) {
  ExecContext ctx;
  ctx.threads = 64 * 1024;
  EXPECT_EQ(ctx.ResolveThreads(1), Hardware());
  EXPECT_EQ(ctx.RequestedThreads(1), 64u * 1024u);
}

TEST(ExecContextTest, TempPrefixFallsBackWhenEmpty) {
  ExecContext ctx;
  const std::string fallback = "out.tmp";
  EXPECT_EQ(ctx.TempPrefixOr(fallback), "out.tmp");
  ctx.temp_prefix = "scratch/run7";
  EXPECT_EQ(ctx.TempPrefixOr(fallback), "scratch/run7");
}

TEST(ExecContextTest, CheckCancelledFollowsTheHook) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.has_cancel_hook());
  EXPECT_TRUE(ctx.CheckCancelled().ok());
  std::atomic<bool> cancel{false};
  ctx.cancelled = [&cancel] { return cancel.load(); };
  EXPECT_TRUE(ctx.has_cancel_hook());
  EXPECT_TRUE(ctx.CheckCancelled().ok());
  cancel = true;
  EXPECT_TRUE(ctx.CheckCancelled().IsCancelled());
}

// ---- Resolution as observed through the algorithm entry points ----

class ExecContextSfsTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();

  SkylineSpec MaxSpec(const Table& t, int dims) {
    std::vector<Criterion> criteria;
    for (int i = 0; i < dims; ++i) {
      criteria.push_back({"a" + std::to_string(i), Directive::kMax});
    }
    auto result = SkylineSpec::Make(t.schema(), std::move(criteria));
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }
};

TEST_F(ExecContextSfsTest, ContextThreadsOverrideSfsOptions) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 800, 3, 7));
  SkylineSpec spec = MaxSpec(t, 3);
  const auto oracle = OracleSkylineMultiset(t, spec);

  // Option asks for all hardware; the context pins it back to sequential.
  SfsOptions options;
  options.threads = 0;
  ExecContext ctx;
  ctx.threads = 1;
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(
      Table sky, ComputeSkylineSfs(t, spec, options, ctx, "out_seq", &stats));
  EXPECT_EQ(stats.threads_used, 1u);
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            oracle);

  // Unset context defers to the (deprecated) option field.
  SfsOptions sequential;
  sequential.threads = 1;
  SkylineRunStats deferred_stats;
  ASSERT_OK_AND_ASSIGN(Table sky2,
                       ComputeSkylineSfs(t, spec, sequential, ExecContext{},
                                         "out_defer", &deferred_stats));
  EXPECT_EQ(deferred_stats.threads_used, 1u);

  if (Hardware() < 2) GTEST_SKIP() << "needs >= 2 hardware threads";
  SfsOptions one;
  one.threads = 1;
  ExecContext two;
  two.threads = 2;
  SkylineRunStats parallel_stats;
  ASSERT_OK_AND_ASSIGN(
      Table sky3,
      ComputeSkylineSfs(t, spec, one, two, "out_par", &parallel_stats));
  EXPECT_EQ(parallel_stats.threads_used, 2u);
  std::vector<char> rows3 = ReadAll(sky3);
  EXPECT_EQ(
      RowMultiset(rows3.data(), sky3.row_count(), t.schema().row_width()),
      oracle);
}

TEST_F(ExecContextSfsTest, CancellationHookAbortsTheRun) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 2000, 4, 3));
  SkylineSpec spec = MaxSpec(t, 4);
  ExecContext ctx;
  ctx.cancelled = [] { return true; };
  auto result =
      ComputeSkylineSfs(t, spec, SfsOptions{}, ctx, "out_cancel", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

TEST_F(ExecContextSfsTest, UnifiedDispatchMatchesDirectCalls) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 600, 4, 5));
  SkylineSpec spec = MaxSpec(t, 4);
  const auto oracle = OracleSkylineMultiset(t, spec);
  for (SkylineAlgorithm algorithm :
       {SkylineAlgorithm::kSfs, SkylineAlgorithm::kBnl,
        SkylineAlgorithm::kAuto}) {
    SkylineRunStats stats;
    ASSERT_OK_AND_ASSIGN(
        Table sky,
        ComputeSkyline(algorithm, t, spec, ExecContext(),
                       "out_unified" +
                           std::to_string(static_cast<int>(algorithm)),
                       &stats));
    std::vector<char> rows = ReadAll(sky);
    EXPECT_EQ(
        RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
        oracle)
        << "algorithm " << static_cast<int>(algorithm);
    EXPECT_EQ(stats.output_rows, sky.row_count());
  }
  // 4 value columns: kAuto must take the SFS route, not a special scan.
  EXPECT_FALSE(SkylineAutoUsesSpecialScan(spec));
}

// ---- Session::Options::threads: the one user-facing thread knob ----

class ExecContextSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    Engine::Options engine_options;
    engine_options.env = env_.get();
    engine_options.write_sidecars = false;
    engine_ = std::make_unique<Engine>(engine_options);
    ASSERT_OK_AND_ASSIGN(Table t,
                         MakeUniformTable(env_.get(), "sqlt", 600, 3, 11));
    ASSERT_TRUE(engine_->CreateTable("T", std::move(t)).ok());
  }

  Status Run(const Session::Options& options, TraceSink* trace,
             int* rows_out) {
    Session::Options session_options = options;
    // Force the Volcano pipeline: the cached-serve path never builds the
    // operators whose spans these tests observe.
    session_options.use_result_cache = false;
    Session session(engine_.get(), session_options);
    session.exec().trace = trace;
    int rows = 0;
    Status st = session.Execute(
        "SELECT * FROM T SKYLINE OF a0 MAX, a1 MAX, a2 MAX",
        [&rows](const RowView&) {
          ++rows;
          return Status::OK();
        });
    if (rows_out != nullptr) *rows_out = rows;
    return st;
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(ExecContextSessionTest, ThreadsZeroDefersToSfsOptions) {
  // threads=0 means "unset" at the session level: sfs.threads=1 keeps the
  // run sequential, so the pipelined filter traces filter passes, not
  // blocks.
  TraceSink trace;
  Session::Options options;
  options.threads = 0;
  options.sfs.threads = 1;
  int rows = 0;
  ASSERT_TRUE(Run(options, &trace, &rows).ok());
  EXPECT_GT(rows, 0);
  EXPECT_EQ(trace.CountSpans("block-scan"), 0u);
  EXPECT_EQ(trace.CountSpans("filter-pass-1"), 1u);
  EXPECT_EQ(trace.CountSpans("sql-parse"), 1u);
  EXPECT_EQ(trace.CountSpans("sql-bind"), 1u);
  EXPECT_EQ(trace.CountSpans("sql-execute"), 1u);
}

TEST_F(ExecContextSessionTest, NonZeroThreadsOverridesSfsOptions) {
  if (ClampThreadsToHardware(0) < 2) {
    GTEST_SKIP() << "needs >= 2 hardware threads";
  }
  TraceSink trace;
  Session::Options options;
  options.threads = 2;
  options.sfs.threads = 1;  // overridden by the session knob
  int rows = 0;
  ASSERT_TRUE(Run(options, &trace, &rows).ok());
  EXPECT_GT(rows, 0);
  EXPECT_GT(trace.CountSpans("block-scan"), 0u);
}

TEST_F(ExecContextSessionTest, ExplicitExecThreadsWinsOverSessionKnob) {
  TraceSink trace;
  Session::Options options;
  options.threads = 4;
  options.use_result_cache = false;
  Session session(engine_.get(), options);
  session.exec().trace = &trace;
  session.exec().threads = 1;  // the context pins it back to sequential
  int rows = 0;
  ASSERT_TRUE(session
                  .Execute("SELECT * FROM T SKYLINE OF a0 MAX, a1 MAX, a2 MAX",
                           [&rows](const RowView&) {
                             ++rows;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_GT(rows, 0);
  EXPECT_EQ(trace.CountSpans("block-scan"), 0u);
  EXPECT_EQ(trace.CountSpans("filter-pass-1"), 1u);
}

TEST_F(ExecContextSessionTest, CancellationSurfacesThroughSession) {
  Session session(engine_.get());
  session.exec().cancelled = [] { return true; };
  Status st = session.Execute(
      "SELECT * FROM T SKYLINE OF a0 MAX, a1 MAX, a2 MAX",
      [](const RowView&) { return Status::OK(); });
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
}

TEST_F(ExecContextSessionTest, MetricsPublishOnStreamExhaustion) {
  MetricsRegistry metrics;
  Session::Options options;
  options.sfs.threads = 1;
  options.use_result_cache = false;
  Session session(engine_.get(), options);
  session.exec().metrics = &metrics;
  int rows = 0;
  ASSERT_TRUE(session
                  .Execute("SELECT * FROM T SKYLINE OF a0 MAX, a1 MAX, a2 MAX",
                           [&rows](const RowView&) {
                             ++rows;
                             return Status::OK();
                           })
                  .ok());
  const MetricsSnapshot snapshot = metrics.Aggregate();
  EXPECT_EQ(snapshot.CounterValue("skyline.sfs.runs"), 1u);
  EXPECT_EQ(snapshot.CounterValue("skyline.sfs.output_rows"),
            static_cast<uint64_t>(rows));
}

}  // namespace
}  // namespace skyline
