#include "common/exec_context.h"

#include <atomic>
#include <set>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/compute_skyline.h"
#include "core/sfs.h"
#include "gtest/gtest.h"
#include "sql/executor.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

size_t Hardware() { return ClampThreadsToHardware(0); }

// ---- Pure thread-knob resolution (the table in exec_context.h) ----

TEST(ExecContextTest, UnsetContextDefersToOptionField) {
  ExecContext ctx;
  EXPECT_EQ(ctx.ResolveThreads(1), 1u);
  EXPECT_EQ(ctx.ResolveThreads(0), Hardware());  // option 0 = hardware
  EXPECT_EQ(ctx.ResolveThreads(3), ClampThreadsToHardware(3));
  EXPECT_EQ(ctx.RequestedThreads(7), 7u);  // unclamped passthrough
}

TEST(ExecContextTest, SetContextOverridesOptionField) {
  ExecContext ctx;
  ctx.threads = 1;
  EXPECT_EQ(ctx.ResolveThreads(0), 1u);
  EXPECT_EQ(ctx.ResolveThreads(8), 1u);
  ctx.threads = 0;  // context 0 = hardware, overriding a literal option
  EXPECT_EQ(ctx.ResolveThreads(1), Hardware());
}

TEST(ExecContextTest, ResolveClampsButRequestedDoesNot) {
  ExecContext ctx;
  ctx.threads = 64 * 1024;
  EXPECT_EQ(ctx.ResolveThreads(1), Hardware());
  EXPECT_EQ(ctx.RequestedThreads(1), 64u * 1024u);
}

TEST(ExecContextTest, TempPrefixFallsBackWhenEmpty) {
  ExecContext ctx;
  const std::string fallback = "out.tmp";
  EXPECT_EQ(ctx.TempPrefixOr(fallback), "out.tmp");
  ctx.temp_prefix = "scratch/run7";
  EXPECT_EQ(ctx.TempPrefixOr(fallback), "scratch/run7");
}

TEST(ExecContextTest, CheckCancelledFollowsTheHook) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.has_cancel_hook());
  EXPECT_TRUE(ctx.CheckCancelled().ok());
  std::atomic<bool> cancel{false};
  ctx.cancelled = [&cancel] { return cancel.load(); };
  EXPECT_TRUE(ctx.has_cancel_hook());
  EXPECT_TRUE(ctx.CheckCancelled().ok());
  cancel = true;
  EXPECT_TRUE(ctx.CheckCancelled().IsCancelled());
}

// ---- Resolution as observed through the algorithm entry points ----

class ExecContextSfsTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();

  SkylineSpec MaxSpec(const Table& t, int dims) {
    std::vector<Criterion> criteria;
    for (int i = 0; i < dims; ++i) {
      criteria.push_back({"a" + std::to_string(i), Directive::kMax});
    }
    auto result = SkylineSpec::Make(t.schema(), std::move(criteria));
    SKYLINE_CHECK(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }
};

TEST_F(ExecContextSfsTest, ContextThreadsOverrideSfsOptions) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 800, 3, 7));
  SkylineSpec spec = MaxSpec(t, 3);
  const auto oracle = OracleSkylineMultiset(t, spec);

  // Option asks for all hardware; the context pins it back to sequential.
  SfsOptions options;
  options.threads = 0;
  ExecContext ctx;
  ctx.threads = 1;
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(
      Table sky, ComputeSkylineSfs(t, spec, options, ctx, "out_seq", &stats));
  EXPECT_EQ(stats.threads_used, 1u);
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            oracle);

  // Unset context defers to the (deprecated) option field.
  SfsOptions sequential;
  sequential.threads = 1;
  SkylineRunStats deferred_stats;
  ASSERT_OK_AND_ASSIGN(Table sky2,
                       ComputeSkylineSfs(t, spec, sequential, ExecContext{},
                                         "out_defer", &deferred_stats));
  EXPECT_EQ(deferred_stats.threads_used, 1u);

  if (Hardware() < 2) GTEST_SKIP() << "needs >= 2 hardware threads";
  SfsOptions one;
  one.threads = 1;
  ExecContext two;
  two.threads = 2;
  SkylineRunStats parallel_stats;
  ASSERT_OK_AND_ASSIGN(
      Table sky3,
      ComputeSkylineSfs(t, spec, one, two, "out_par", &parallel_stats));
  EXPECT_EQ(parallel_stats.threads_used, 2u);
  std::vector<char> rows3 = ReadAll(sky3);
  EXPECT_EQ(
      RowMultiset(rows3.data(), sky3.row_count(), t.schema().row_width()),
      oracle);
}

TEST_F(ExecContextSfsTest, DeprecatedSignatureMatchesDefaultContext) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 500, 3, 9));
  SkylineSpec spec = MaxSpec(t, 3);
  SfsOptions options;
  options.threads = 1;
  SkylineRunStats old_stats;
  ASSERT_OK_AND_ASSIGN(
      Table old_sky, ComputeSkylineSfs(t, spec, options, "out_old",
                                       &old_stats));
  SkylineRunStats new_stats;
  ASSERT_OK_AND_ASSIGN(Table new_sky,
                       ComputeSkylineSfs(t, spec, options, DefaultExecContext(),
                                         "out_new", &new_stats));
  std::vector<char> old_rows = ReadAll(old_sky);
  std::vector<char> new_rows = ReadAll(new_sky);
  EXPECT_EQ(RowMultiset(old_rows.data(), old_sky.row_count(),
                        t.schema().row_width()),
            RowMultiset(new_rows.data(), new_sky.row_count(),
                        t.schema().row_width()));
  EXPECT_EQ(old_stats.threads_used, new_stats.threads_used);
  EXPECT_EQ(old_stats.passes, new_stats.passes);
}

TEST_F(ExecContextSfsTest, CancellationHookAbortsTheRun) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 2000, 4, 3));
  SkylineSpec spec = MaxSpec(t, 4);
  ExecContext ctx;
  ctx.cancelled = [] { return true; };
  auto result =
      ComputeSkylineSfs(t, spec, SfsOptions{}, ctx, "out_cancel", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

TEST_F(ExecContextSfsTest, UnifiedDispatchMatchesDirectCalls) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 600, 4, 5));
  SkylineSpec spec = MaxSpec(t, 4);
  const auto oracle = OracleSkylineMultiset(t, spec);
  for (SkylineAlgorithm algorithm :
       {SkylineAlgorithm::kSfs, SkylineAlgorithm::kBnl,
        SkylineAlgorithm::kAuto}) {
    SkylineRunStats stats;
    ASSERT_OK_AND_ASSIGN(
        Table sky,
        ComputeSkyline(algorithm, t, spec, DefaultExecContext(),
                       "out_unified" +
                           std::to_string(static_cast<int>(algorithm)),
                       &stats));
    std::vector<char> rows = ReadAll(sky);
    EXPECT_EQ(
        RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
        oracle)
        << "algorithm " << static_cast<int>(algorithm);
    EXPECT_EQ(stats.output_rows, sky.row_count());
  }
  // 4 value columns: kAuto must take the SFS route, not a special scan.
  EXPECT_FALSE(SkylineAutoUsesSpecialScan(spec));
}

// ---- SqlOptions::threads: the documented legacy exception ----

class ExecContextSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    ASSERT_OK_AND_ASSIGN(Table t,
                         MakeUniformTable(env_.get(), "sqlt", 600, 3, 11));
    table_.emplace(std::move(t));
    catalog_ = std::make_unique<Catalog>(env_.get());
    catalog_->Register("T", &*table_);
  }

  Status Run(const SqlOptions& options, int* rows_out) {
    int rows = 0;
    Status st = ExecuteSql(*catalog_,
                           "SELECT * FROM T SKYLINE OF a0 MAX, a1 MAX, a2 MAX",
                           options, [&rows](const RowView&) {
                             ++rows;
                             return Status::OK();
                           });
    if (rows_out != nullptr) *rows_out = rows;
    return st;
  }

  std::unique_ptr<Env> env_;
  std::optional<Table> table_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(ExecContextSqlTest, ThreadsZeroDefersToSfsOptions) {
  // threads=0 means "unset" at the SQL level: sfs.threads=1 keeps the run
  // sequential, so the pipelined filter traces filter passes, not blocks.
  TraceSink trace;
  SqlOptions options;
  options.threads = 0;
  options.sfs.threads = 1;
  options.exec.trace = &trace;
  int rows = 0;
  ASSERT_TRUE(Run(options, &rows).ok());
  EXPECT_GT(rows, 0);
  EXPECT_EQ(trace.CountSpans("block-scan"), 0u);
  EXPECT_EQ(trace.CountSpans("filter-pass-1"), 1u);
  EXPECT_EQ(trace.CountSpans("sql-parse"), 1u);
  EXPECT_EQ(trace.CountSpans("sql-bind"), 1u);
  EXPECT_EQ(trace.CountSpans("sql-execute"), 1u);
}

TEST_F(ExecContextSqlTest, NonZeroThreadsOverridesSfsOptions) {
  if (ClampThreadsToHardware(0) < 2) {
    GTEST_SKIP() << "needs >= 2 hardware threads";
  }
  TraceSink trace;
  SqlOptions options;
  options.threads = 2;
  options.sfs.threads = 1;  // overridden by the legacy session knob
  options.exec.trace = &trace;
  int rows = 0;
  ASSERT_TRUE(Run(options, &rows).ok());
  EXPECT_GT(rows, 0);
  EXPECT_GT(trace.CountSpans("block-scan"), 0u);
}

TEST_F(ExecContextSqlTest, ExplicitExecThreadsWinsOverLegacyKnob) {
  TraceSink trace;
  SqlOptions options;
  options.threads = 4;
  options.exec.threads = 1;  // the new API pins it back to sequential
  options.exec.trace = &trace;
  int rows = 0;
  ASSERT_TRUE(Run(options, &rows).ok());
  EXPECT_GT(rows, 0);
  EXPECT_EQ(trace.CountSpans("block-scan"), 0u);
  EXPECT_EQ(trace.CountSpans("filter-pass-1"), 1u);
}

TEST_F(ExecContextSqlTest, CancellationSurfacesThroughSql) {
  SqlOptions options;
  options.exec.cancelled = [] { return true; };
  Status st = Run(options, nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
}

TEST_F(ExecContextSqlTest, MetricsPublishOnStreamExhaustion) {
  MetricsRegistry metrics;
  SqlOptions options;
  options.sfs.threads = 1;
  options.exec.metrics = &metrics;
  int rows = 0;
  ASSERT_TRUE(Run(options, &rows).ok());
  const MetricsSnapshot snapshot = metrics.Aggregate();
  EXPECT_EQ(snapshot.CounterValue("skyline.sfs.runs"), 1u);
  EXPECT_EQ(snapshot.CounterValue("skyline.sfs.output_rows"),
            static_cast<uint64_t>(rows));
}

}  // namespace
}  // namespace skyline
