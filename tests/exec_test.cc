#include "exec/limit.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/select.h"
#include "exec/skyline_op.h"
#include "exec/sort_op.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;

class ExecTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

TEST_F(ExecTest, ScanStreamsAllRows) {
  ASSERT_OK_AND_ASSIGN(Table t,
                       MakeIntTable(env_.get(), "t", 2, {{1, 2}, {3, 4}}));
  IoStats io;
  TableScanOperator scan(&t, &io);
  ASSERT_OK(scan.Open());
  int count = 0;
  while (const char* row = scan.Next()) {
    RowView view(&scan.output_schema(), row);
    EXPECT_EQ(view.GetInt32(0), count == 0 ? 1 : 3);
    ++count;
  }
  EXPECT_EQ(count, 2);
  EXPECT_OK(scan.status());
  EXPECT_EQ(io.pages_read, 1u);
}

TEST_F(ExecTest, SelectFilters) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{1, 0}, {5, 0}, {9, 0}}));
  SelectOperator select(
      std::make_unique<TableScanOperator>(&t),
      [](const RowView& row) { return row.GetInt32(0) >= 5; });
  ASSERT_OK(select.Open());
  std::vector<int32_t> got;
  while (const char* row = select.Next()) {
    got.push_back(RowView(&select.output_schema(), row).GetInt32(0));
  }
  EXPECT_EQ(got, (std::vector<int32_t>{5, 9}));
}

TEST_F(ExecTest, SelectAllFilteredOut) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{1, 0}}));
  SelectOperator select(std::make_unique<TableScanOperator>(&t),
                        [](const RowView&) { return false; });
  ASSERT_OK(select.Open());
  EXPECT_EQ(select.Next(), nullptr);
  EXPECT_OK(select.status());
}

TEST_F(ExecTest, ProjectReordersColumns) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table guide, MakeGoodEatsTable(env.get(), "g"));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<ProjectOperator> project,
      ProjectOperator::Make(std::make_unique<TableScanOperator>(&guide),
                            {"price", "restaurant"}));
  ASSERT_OK(project->Open());
  const char* row = project->Next();
  ASSERT_NE(row, nullptr);
  RowView view(&project->output_schema(), row);
  EXPECT_EQ(view.GetFloat64(0), 47.50);
  EXPECT_EQ(view.GetString(1), "Summer Moon");
  EXPECT_EQ(project->output_schema().row_width(), 28u);
}

TEST_F(ExecTest, ProjectUnknownColumnFails) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{1, 2}}));
  EXPECT_TRUE(ProjectOperator::Make(std::make_unique<TableScanOperator>(&t),
                                    {"zzz"})
                  .status()
                  .IsNotFound());
}

TEST_F(ExecTest, SortOperatorOrdersStream) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{3, 0}, {1, 0}, {2, 0}}));
  LexicographicOrdering ord(&t.schema(), {{0, false}});
  SortOperator sort(std::make_unique<TableScanOperator>(&t), env_.get(), "tmp",
                    &ord);
  ASSERT_OK(sort.Open());
  std::vector<int32_t> got;
  while (const char* row = sort.Next()) {
    got.push_back(RowView(&sort.output_schema(), row).GetInt32(0));
  }
  EXPECT_EQ(got, (std::vector<int32_t>{1, 2, 3}));
}

TEST_F(ExecTest, LimitStopsEarly) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{1, 0}, {2, 0}, {3, 0}}));
  LimitOperator limit(std::make_unique<TableScanOperator>(&t), 2);
  ASSERT_OK(limit.Open());
  EXPECT_NE(limit.Next(), nullptr);
  EXPECT_NE(limit.Next(), nullptr);
  EXPECT_EQ(limit.Next(), nullptr);
  EXPECT_EQ(limit.emitted(), 2u);
  EXPECT_OK(limit.status());
}

TEST_F(ExecTest, SkylineOperatorSfsMatchesOracle) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 1000, 4, 61));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<SkylineOperator> op,
      SkylineOperator::Make(std::make_unique<TableScanOperator>(&t),
                            env_.get(), "tmp",
                            {{"a0", Directive::kMax},
                             {"a1", Directive::kMax},
                             {"a2", Directive::kMax},
                             {"a3", Directive::kMax}}));
  ASSERT_OK(op->Open());
  std::multiset<std::string> got;
  while (const char* row = op->Next()) {
    got.emplace(row, t.schema().row_width());
  }
  EXPECT_OK(op->status());
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax},
                                     {"a3", Directive::kMax}}));
  EXPECT_EQ(got, OracleSkylineMultiset(t, spec));
  EXPECT_EQ(op->stats().output_rows, got.size());
}

TEST_F(ExecTest, SkylineOperatorBnlMatchesSfs) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 800, 3, 62));
  std::vector<Criterion> criteria = {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}};
  std::multiset<std::string> results[2];
  int i = 0;
  for (auto algo : {SkylineAlgorithm::kSfs, SkylineAlgorithm::kBnl}) {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<SkylineOperator> op,
        SkylineOperator::Make(std::make_unique<TableScanOperator>(&t),
                              env_.get(), "tmp" + std::to_string(i), criteria,
                              algo));
    ASSERT_OK(op->Open());
    while (const char* row = op->Next()) {
      results[i].emplace(row, t.schema().row_width());
    }
    EXPECT_OK(op->status());
    ++i;
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST_F(ExecTest, SelectionBelowSkylineChangesResult) {
  // The paper's non-commutativity point: skyline(select(R)) generally
  // differs from select(skyline(R)).
  ASSERT_OK_AND_ASSIGN(
      Table t,
      MakeIntTable(env_.get(), "t", 2, {{10, 10}, {5, 9}, {4, 8}, {3, 7}}));
  std::vector<Criterion> criteria = {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax}};
  // Skyline of the full table is just (10, 10).
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<SkylineOperator> full,
      SkylineOperator::Make(std::make_unique<TableScanOperator>(&t),
                            env_.get(), "tmp_full", criteria));
  ASSERT_OK(full->Open());
  int full_count = 0;
  while (full->Next() != nullptr) ++full_count;
  EXPECT_EQ(full_count, 1);

  // Skyline of rows with a0 < 10 is (5, 9) — which select(skyline) misses.
  auto select = std::make_unique<SelectOperator>(
      std::make_unique<TableScanOperator>(&t),
      [](const RowView& row) { return row.GetInt32(0) < 10; });
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<SkylineOperator> filtered,
      SkylineOperator::Make(std::move(select), env_.get(), "tmp_filt",
                            criteria));
  ASSERT_OK(filtered->Open());
  const char* row = filtered->Next();
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(RowView(&filtered->output_schema(), row).GetInt32(0), 5);
  EXPECT_EQ(filtered->Next(), nullptr);
}

TEST_F(ExecTest, TopNOverSkylineStopsPipeline) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 2000, 5, 63));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<SkylineOperator> sky,
      SkylineOperator::Make(std::make_unique<TableScanOperator>(&t),
                            env_.get(), "tmp",
                            {{"a0", Directive::kMax},
                             {"a1", Directive::kMax},
                             {"a2", Directive::kMax},
                             {"a3", Directive::kMax},
                             {"a4", Directive::kMax}}));
  SkylineOperator* sky_ptr = sky.get();
  LimitOperator limit(std::move(sky), 5);
  ASSERT_OK(limit.Open());
  while (limit.Next() != nullptr) {
  }
  EXPECT_EQ(limit.emitted(), 5u);
  // SFS only confirmed (roughly) as many tuples as were pulled — far fewer
  // than the full skyline.
  EXPECT_EQ(sky_ptr->stats().output_rows, 5u);
}

TEST_F(ExecTest, SkylineOperatorRejectsBadCriteria) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{1, 2}}));
  EXPECT_FALSE(SkylineOperator::Make(std::make_unique<TableScanOperator>(&t),
                                     env_.get(), "tmp",
                                     {{"zzz", Directive::kMax}})
                   .ok());
}


TEST_F(ExecTest, AutoAlgorithmPicksSpecialCases) {
  // kAuto must route 2- and 3-dim specs through the windowless scans and
  // higher dimensionalities through SFS, always matching the oracle.
  for (int dims : {2, 3, 4}) {
    ASSERT_OK_AND_ASSIGN(
        Table t, MakeUniformTable(env_.get(), "t" + std::to_string(dims), 900,
                                  4, 64 + static_cast<uint64_t>(dims)));
    std::vector<Criterion> criteria;
    for (int i = 0; i < dims; ++i) {
      criteria.push_back({"a" + std::to_string(i), Directive::kMax});
    }
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<SkylineOperator> op,
        SkylineOperator::Make(std::make_unique<TableScanOperator>(&t),
                              env_.get(), "tmp_auto" + std::to_string(dims),
                              criteria, SkylineAlgorithm::kAuto));
    ASSERT_OK(op->Open());
    std::multiset<std::string> got;
    while (const char* row = op->Next()) {
      got.emplace(row, t.schema().row_width());
    }
    EXPECT_OK(op->status());
    ASSERT_OK_AND_ASSIGN(SkylineSpec spec,
                         SkylineSpec::Make(t.schema(), criteria));
    EXPECT_EQ(got, OracleSkylineMultiset(t, spec)) << "dims=" << dims;
    if (dims <= 3) {
      // The special cases never spill: zero extra pages at any window.
      EXPECT_EQ(op->stats().ExtraPages(), 0u);
    }
  }
}

TEST_F(ExecTest, OperatorStatsCountRowsAndNextCalls) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{1, 0}, {5, 0}, {9, 0}}));
  SelectOperator select(
      std::make_unique<TableScanOperator>(&t),
      [](const RowView& row) { return row.GetInt32(0) >= 5; });
  ASSERT_OK(select.Open());
  while (select.Next() != nullptr) {
  }
  EXPECT_OK(select.status());
  // Select emitted 2 of 3 rows; the call that returned nullptr counts too.
  EXPECT_EQ(select.op_stats().rows_out, 2u);
  EXPECT_EQ(select.op_stats().next_calls, 3u);
  // The child was pulled through the public wrapper, so its stats are
  // visible as well: all 3 rows plus the exhaustion call.
  const Operator* child = select.PlanChild();
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->op_stats().rows_out, 3u);
  EXPECT_EQ(child->op_stats().next_calls, 4u);
  // Timing was never enabled: the plain path must not read the clock.
  EXPECT_EQ(select.op_stats().open_ns, 0u);
  EXPECT_EQ(select.op_stats().next_ns, 0u);
}

TEST_F(ExecTest, CollectPlanStatsAnnotatesExecutedTree) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 500, 3, 77));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<SkylineOperator> skyline_op,
      SkylineOperator::Make(std::make_unique<TableScanOperator>(&t),
                            env_.get(), "tmp_plan",
                            {{"a0", Directive::kMax},
                             {"a1", Directive::kMax},
                             {"a2", Directive::kMin}}));
  LimitOperator limit(std::move(skyline_op), 4);
  limit.EnableTimingRecursive();
  ASSERT_OK(limit.Open());
  uint64_t rows = 0;
  while (limit.Next() != nullptr) ++rows;
  EXPECT_OK(limit.status());
  ASSERT_EQ(rows, 4u);

  const std::vector<PlanNodeStats> plan = CollectPlanStats(limit);
  ASSERT_EQ(plan.size(), 3u);
  // Root-first with increasing depth: Limit, Skyline, TableScan.
  EXPECT_NE(plan[0].label.find("Limit"), std::string::npos);
  EXPECT_NE(plan[1].label.find("Skyline"), std::string::npos);
  EXPECT_NE(plan[2].label.find("TableScan"), std::string::npos);
  EXPECT_EQ(plan[0].depth, 0u);
  EXPECT_EQ(plan[1].depth, 1u);
  EXPECT_EQ(plan[2].depth, 2u);
  // rows_in mirrors the child's rows_out.
  EXPECT_EQ(plan[0].rows_out, 4u);
  EXPECT_EQ(plan[0].rows_in, plan[1].rows_out);
  EXPECT_EQ(plan[1].rows_in, plan[2].rows_out);
  // Limit stopped the pipeline: the skyline stream was not drained.
  EXPECT_EQ(plan[1].rows_out, 4u);
  // Timing was enabled, so the blocking skyline operator shows open time,
  // and self time never exceeds total.
  EXPECT_GT(plan[1].open_ns, 0u);
  for (const PlanNodeStats& node : plan) {
    EXPECT_LE(node.self_ns, node.total_ns) << node.label;
  }
  // Operator detail: the skyline node carries its algorithm counters and
  // a counters line renders in the text form.
  const auto& counters = plan[1].counters;
  const auto has = [&counters](const char* key) {
    for (const auto& kv : counters) {
      if (kv.first == key) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("input_rows"));
  EXPECT_TRUE(has("window_comparisons"));
  const std::string text = RenderPlanStatsText(plan);
  EXPECT_NE(text.find("in="), std::string::npos);
  EXPECT_NE(text.find("out="), std::string::npos);
  EXPECT_NE(text.find("input_rows="), std::string::npos);
  EXPECT_NE(text.find("limit=4"), std::string::npos);
}

TEST_F(ExecTest, PlainExecutionSkipsClockButCollectsCounts) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 200, 3, 78));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<SkylineOperator> op,
      SkylineOperator::Make(std::make_unique<TableScanOperator>(&t),
                            env_.get(), "tmp_plain",
                            {{"a0", Directive::kMax}, {"a1", Directive::kMax},
                             {"a2", Directive::kMax}}));
  ASSERT_OK(op->Open());
  while (op->Next() != nullptr) {
  }
  EXPECT_OK(op->status());
  const std::vector<PlanNodeStats> plan = CollectPlanStats(*op);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_GT(plan[0].rows_out, 0u);
  EXPECT_EQ(plan[0].open_ns, 0u);
  EXPECT_EQ(plan[0].total_ns, 0u);
}

}  // namespace
}  // namespace skyline
