#include "sort/external_sort.h"

#include <algorithm>
#include <cstring>

#include "core/scoring.h"
#include "gtest/gtest.h"
#include "relation/generator.h"
#include "storage/heap_file.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;

/// Reads all int32 values of a single-int32-column heap file.
std::vector<int32_t> ReadInts(Env* env, const std::string& path) {
  HeapFileReader reader(env, path, 4, nullptr);
  SKYLINE_CHECK_OK(reader.Open());
  std::vector<int32_t> out;
  while (const char* rec = reader.Next()) {
    int32_t v;
    std::memcpy(&v, rec, 4);
    out.push_back(v);
  }
  return out;
}

class ExternalSortTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

TEST_F(ExternalSortTest, SingleRunFitsInBuffer) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 1, {{5}, {2}, {9}, {1}, {7}}));
  LexicographicOrdering ord(&t.schema(), {{0, false}});
  TempFileManager tmp(env_.get(), "tmp");
  SortStats stats;
  ASSERT_OK_AND_ASSIGN(std::string sorted,
                       SortHeapFile(env_.get(), &tmp, "t", 4, ord,
                                    SortOptions{}, ExecContext(), &stats));
  EXPECT_EQ(ReadInts(env_.get(), sorted),
            (std::vector<int32_t>{1, 2, 5, 7, 9}));
  EXPECT_EQ(stats.runs_generated, 1u);
  EXPECT_EQ(stats.merge_levels, 0u);
}

TEST_F(ExternalSortTest, MultiRunMerge) {
  // 1024 int32 records per page; 3 buffer pages => runs of 3072.
  std::vector<std::vector<int32_t>> rows;
  Random rng(5);
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({rng.UniformInt32()});
  }
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 1, rows));
  LexicographicOrdering ord(&t.schema(), {{0, false}});
  TempFileManager tmp(env_.get(), "tmp");
  SortOptions opts;
  opts.buffer_pages = 3;
  SortStats stats;
  ASSERT_OK_AND_ASSIGN(
      std::string sorted,
      SortHeapFile(env_.get(), &tmp, "t", 4, ord, opts, ExecContext(), &stats));
  std::vector<int32_t> got = ReadInts(env_.get(), sorted);
  ASSERT_EQ(got.size(), 20000u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_GT(stats.runs_generated, 1u);
  EXPECT_GE(stats.merge_levels, 1u);
  EXPECT_GT(stats.io.pages_written, 0u);

  // Multiset preserved.
  std::vector<int32_t> want;
  for (const auto& r : rows) want.push_back(r[0]);
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST_F(ExternalSortTest, MultiLevelMergeWithTinyFanIn) {
  std::vector<std::vector<int32_t>> rows;
  Random rng(6);
  for (int i = 0; i < 40000; ++i) rows.push_back({rng.UniformInt32()});
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 1, rows));
  LexicographicOrdering ord(&t.schema(), {{0, false}});
  TempFileManager tmp(env_.get(), "tmp");
  SortOptions opts;
  opts.buffer_pages = 3;  // fan-in 2 => multiple merge levels
  SortStats stats;
  ASSERT_OK_AND_ASSIGN(
      std::string sorted,
      SortHeapFile(env_.get(), &tmp, "t", 4, ord, opts, ExecContext(), &stats));
  std::vector<int32_t> got = ReadInts(env_.get(), sorted);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_GT(stats.merge_levels, 1u);
}

TEST_F(ExternalSortTest, DescendingOrder) {
  ASSERT_OK_AND_ASSIGN(Table t,
                       MakeIntTable(env_.get(), "t", 1, {{3}, {1}, {2}}));
  LexicographicOrdering ord(&t.schema(), {{0, true}});
  TempFileManager tmp(env_.get(), "tmp");
  ASSERT_OK_AND_ASSIGN(
      std::string sorted,
      SortHeapFile(env_.get(), &tmp, "t", 4, ord, SortOptions{}, ExecContext(), nullptr));
  EXPECT_EQ(ReadInts(env_.get(), sorted), (std::vector<int32_t>{3, 2, 1}));
}

TEST_F(ExternalSortTest, EmptyInput) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 1, {}));
  LexicographicOrdering ord(&t.schema(), {{0, false}});
  TempFileManager tmp(env_.get(), "tmp");
  ASSERT_OK_AND_ASSIGN(
      std::string sorted,
      SortHeapFile(env_.get(), &tmp, "t", 4, ord, SortOptions{}, ExecContext(), nullptr));
  EXPECT_TRUE(ReadInts(env_.get(), sorted).empty());
}

TEST_F(ExternalSortTest, DuplicateKeysPreserved) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 1, {{2}, {2}, {1}, {2}, {1}}));
  LexicographicOrdering ord(&t.schema(), {{0, false}});
  TempFileManager tmp(env_.get(), "tmp");
  ASSERT_OK_AND_ASSIGN(
      std::string sorted,
      SortHeapFile(env_.get(), &tmp, "t", 4, ord, SortOptions{}, ExecContext(), nullptr));
  EXPECT_EQ(ReadInts(env_.get(), sorted),
            (std::vector<int32_t>{1, 1, 2, 2, 2}));
}

TEST_F(ExternalSortTest, KeyFastPathMatchesComparatorPath) {
  // Sort the same data with the entropy ordering (scalar-key path) at two
  // buffer sizes: one-run in-memory vs multi-run external; results must
  // agree on the key sequence (descending).
  ASSERT_OK_AND_ASSIGN(Table t,
                       MakeUniformTable(env_.get(), "t", 5000, 3, 17, 0));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}}));
  EntropyOrdering ord(&spec, t);
  ASSERT_TRUE(ord.has_key());

  TempFileManager tmp(env_.get(), "tmp");
  SortOptions big;  // single run
  ASSERT_OK_AND_ASSIGN(std::string s1,
                       SortHeapFile(env_.get(), &tmp, "t",
                                    t.schema().row_width(), ord, big, ExecContext(), nullptr));
  SortOptions small;
  small.buffer_pages = 3;
  ASSERT_OK_AND_ASSIGN(
      std::string s2, SortHeapFile(env_.get(), &tmp, "t",
                                   t.schema().row_width(), ord, small, ExecContext(), nullptr));

  auto keys_of = [&](const std::string& path) {
    HeapFileReader reader(env_.get(), path, t.schema().row_width(), nullptr);
    SKYLINE_CHECK_OK(reader.Open());
    std::vector<double> keys;
    while (const char* rec = reader.Next()) keys.push_back(ord.Key(rec));
    return keys;
  };
  std::vector<double> k1 = keys_of(s1), k2 = keys_of(s2);
  ASSERT_EQ(k1.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(k1.rbegin(), k1.rend()));
  EXPECT_EQ(k1, k2);
}

TEST_F(ExternalSortTest, SortIsTopologicalForDominance) {
  // Theorem 7: after a nested skyline sort, no tuple dominates an earlier
  // tuple.
  ASSERT_OK_AND_ASSIGN(Table t,
                       MakeUniformTable(env_.get(), "t", 500, 3, 23, 0));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMin}}));
  auto ord = MakeNestedSkylineOrdering(spec);
  TempFileManager tmp(env_.get(), "tmp");
  ASSERT_OK_AND_ASSIGN(
      std::string sorted,
      SortHeapFile(env_.get(), &tmp, "t", t.schema().row_width(), *ord,
                   SortOptions{}, ExecContext(), nullptr));
  HeapFileReader reader(env_.get(), sorted, t.schema().row_width(), nullptr);
  ASSERT_OK(reader.Open());
  std::vector<char> rows;
  while (const char* rec = reader.Next()) {
    rows.insert(rows.end(), rec, rec + t.schema().row_width());
  }
  const size_t width = t.schema().row_width();
  const uint64_t n = rows.size() / width;
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = i + 1; j < n; ++j) {
      EXPECT_FALSE(Dominates(spec, rows.data() + j * width,
                             rows.data() + i * width))
          << "tuple " << j << " dominates earlier tuple " << i;
    }
  }
}

}  // namespace
}  // namespace skyline
