#include "faulty_env.h"

namespace skyline {
namespace testing_util {
namespace {

class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(std::unique_ptr<WritableFile> base, FaultyEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const char* data, size_t size) override {
    if (env_->ConsumeWrite()) {
      return Status::IoError("injected write failure");
    }
    return base_->Append(data, size);
  }

  Status Close() override { return base_->Close(); }
  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultyEnv* env_;
};

class FaultyRandomAccessFile : public RandomAccessFile {
 public:
  FaultyRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                         FaultyEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t size, char* scratch) const override {
    if (env_->ConsumeRead()) {
      return Status::IoError("injected read failure");
    }
    return base_->Read(offset, size, scratch);
  }

  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  FaultyEnv* env_;
};

}  // namespace

bool FaultyEnv::ConsumeWrite() {
  if (writes_left_ < 0) return false;
  if (writes_left_ == 0) return true;
  --writes_left_;
  return false;
}

bool FaultyEnv::ConsumeRead() {
  if (reads_left_ < 0) return false;
  if (reads_left_ == 0) return true;
  --reads_left_;
  return false;
}

Status FaultyEnv::NewWritableFile(const std::string& path,
                                  std::unique_ptr<WritableFile>* out) {
  std::unique_ptr<WritableFile> base_file;
  SKYLINE_RETURN_IF_ERROR(base_->NewWritableFile(path, &base_file));
  *out = std::make_unique<FaultyWritableFile>(std::move(base_file), this);
  return Status::OK();
}

Status FaultyEnv::NewRandomAccessFile(const std::string& path,
                                      std::unique_ptr<RandomAccessFile>* out) {
  std::unique_ptr<RandomAccessFile> base_file;
  SKYLINE_RETURN_IF_ERROR(base_->NewRandomAccessFile(path, &base_file));
  *out = std::make_unique<FaultyRandomAccessFile>(std::move(base_file), this);
  return Status::OK();
}

}  // namespace testing_util
}  // namespace skyline
