#ifndef SKYLINE_TESTS_FAULTY_ENV_H_
#define SKYLINE_TESTS_FAULTY_ENV_H_

#include <memory>

#include "env/env.h"

namespace skyline {
namespace testing_util {

/// Env decorator that injects I/O failures: after `fail_after_writes`
/// successful Append calls (across all files) every further Append fails,
/// and likewise for reads. Used to verify that every algorithm propagates
/// storage errors as Status instead of crashing or mis-reporting.
class FaultyEnv : public Env {
 public:
  explicit FaultyEnv(Env* base) : base_(base) {}

  /// -1 disables injection for that operation kind.
  void set_fail_after_writes(int64_t n) { writes_left_ = n; }
  void set_fail_after_reads(int64_t n) { reads_left_ = n; }

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override;
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }
  bool FileExists(const std::string& path) const override {
    return base_->FileExists(path);
  }
  Result<uint64_t> FileSize(const std::string& path) const override {
    return base_->FileSize(path);
  }

  /// Consumes one budget unit; true if the operation should fail. Public
  /// for the wrapper file classes (internal to the implementation).
  bool ConsumeWrite();
  bool ConsumeRead();

 private:
  Env* base_;
  int64_t writes_left_ = -1;
  int64_t reads_left_ = -1;
};

}  // namespace testing_util
}  // namespace skyline

#endif  // SKYLINE_TESTS_FAULTY_ENV_H_
