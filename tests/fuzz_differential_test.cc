// Differential fuzzing: randomized configurations (dimensions, directive
// mixes, distributions, duplicates, window budgets, algorithms) checked
// against the naive oracle. Each seed derives every choice
// deterministically, so failures reproduce exactly.

#include "core/skyline.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

struct FuzzConfig {
  GeneratorOptions gen;
  std::vector<Criterion> criteria;
  size_t window_pages;
  bool projection;
  Presort presort;
};

FuzzConfig DeriveConfig(uint64_t seed) {
  Random rng(seed * 7919 + 13);
  FuzzConfig config;
  config.gen.num_rows = 200 + rng.Uniform(1200);
  config.gen.num_attributes = 2 + static_cast<int>(rng.Uniform(5));
  config.gen.payload_bytes = rng.Uniform(3) * 8;
  config.gen.seed = seed;
  switch (rng.Uniform(4)) {
    case 0:
      config.gen.distribution = Distribution::kCorrelated;
      break;
    case 1:
      config.gen.distribution = Distribution::kAntiCorrelated;
      break;
    default:
      config.gen.distribution = Distribution::kIndependent;
      break;
  }
  if (rng.OneIn(0.4)) {
    // Small domains: duplicates and DIFF groups become meaningful.
    config.gen.small_domain = true;
    config.gen.domain_lo = 0;
    config.gen.domain_hi = static_cast<int32_t>(2 + rng.Uniform(20));
  } else if (rng.OneIn(0.3)) {
    config.gen.skew_exponent = 1.0 + rng.UniformDouble() * 7.0;
  }
  if (rng.OneIn(0.5)) {
    // Mixed attribute types: the order-key transform must keep every
    // algorithm oracle-exact across int32/int64/float64 lanes.
    for (int i = 0; i < config.gen.num_attributes; ++i) {
      switch (rng.Uniform(3)) {
        case 0:
          config.gen.attribute_types.push_back(ColumnType::kInt32);
          break;
        case 1:
          config.gen.attribute_types.push_back(ColumnType::kInt64);
          break;
        default:
          config.gen.attribute_types.push_back(ColumnType::kFloat64);
          break;
      }
    }
  }

  // Directives: mostly MAX/MIN; one DIFF column sometimes (only useful
  // with small domains, else every group is a singleton).
  const int dims = config.gen.num_attributes;
  int diff_budget = (config.gen.small_domain && rng.OneIn(0.5)) ? 1 : 0;
  int value_criteria = 0;
  for (int i = 0; i < dims; ++i) {
    Directive directive;
    if (diff_budget > 0 && rng.OneIn(0.3)) {
      directive = Directive::kDiff;
      --diff_budget;
    } else {
      directive = rng.OneIn(0.3) ? Directive::kMin : Directive::kMax;
      ++value_criteria;
    }
    config.criteria.push_back({"a" + std::to_string(i), directive});
  }
  if (value_criteria == 0) {
    config.criteria.back().directive = Directive::kMax;
  }
  if (rng.OneIn(0.25)) {
    // Dictionary-encoded string DIFF: a bounded payload pool guarantees
    // real duplicate groups.
    if (config.gen.payload_bytes == 0) config.gen.payload_bytes = 8;
    config.gen.payload_cardinality = 2 + rng.Uniform(4);
    config.criteria.push_back({"payload", Directive::kDiff});
  }
  config.window_pages = 1 + rng.Uniform(4);
  config.projection = rng.OneIn(0.5);
  config.presort = rng.OneIn(0.5) ? Presort::kEntropy : Presort::kNested;
  return config;
}

class FuzzDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferentialTest, AllAlgorithmsMatchOracle) {
  const FuzzConfig config = DeriveConfig(GetParam());
  auto env = NewMemEnv();
  auto t_result = GenerateTable(env.get(), "t", config.gen);
  ASSERT_TRUE(t_result.ok()) << t_result.status().ToString();
  Table t = std::move(t_result).value();
  auto spec_result = SkylineSpec::Make(t.schema(), config.criteria);
  ASSERT_TRUE(spec_result.ok()) << spec_result.status().ToString();
  const SkylineSpec& spec = *spec_result;
  const size_t w = t.schema().row_width();
  const auto oracle = OracleSkylineMultiset(t, spec);
  const std::string ctx =
      "seed=" + std::to_string(GetParam()) + " " + spec.ToString() +
      " rows=" + std::to_string(t.row_count()) +
      " window=" + std::to_string(config.window_pages);

  // SFS with the derived knobs.
  {
    SfsOptions opts;
    opts.window_pages = config.window_pages;
    opts.use_projection = config.projection;
    opts.presort = config.presort;
    auto sky = ComputeSkylineSfs(t, spec, opts, ExecContext(), "sfs", nullptr);
    ASSERT_TRUE(sky.ok()) << ctx << ": " << sky.status().ToString();
    std::vector<char> rows = ReadAll(*sky);
    ASSERT_EQ(RowMultiset(rows.data(), sky->row_count(), w), oracle)
        << ctx << " [SFS]";
  }
  // BNL at the same window.
  {
    BnlOptions opts;
    opts.window_pages = config.window_pages;
    auto sky = ComputeSkylineBnl(t, spec, opts, ExecContext(), "bnl", nullptr);
    ASSERT_TRUE(sky.ok()) << ctx << ": " << sky.status().ToString();
    std::vector<char> rows = ReadAll(*sky);
    ASSERT_EQ(RowMultiset(rows.data(), sky->row_count(), w), oracle)
        << ctx << " [BNL]";
  }
  // LESS.
  {
    LessOptions opts;
    opts.ef_window_pages = 1;
    opts.window_pages = config.window_pages;
    opts.use_projection = config.projection;
    auto sky = ComputeSkylineLess(t, spec, opts, ExecContext(), "less", nullptr);
    ASSERT_TRUE(sky.ok()) << ctx << ": " << sky.status().ToString();
    std::vector<char> rows = ReadAll(*sky);
    ASSERT_EQ(RowMultiset(rows.data(), sky->row_count(), w), oracle)
        << ctx << " [LESS]";
  }
  // Divide & conquer.
  {
    auto sky = DivideConquerSkylineRows(t, spec);
    ASSERT_TRUE(sky.ok()) << ctx;
    ASSERT_EQ(RowMultiset(sky->data(), sky->size() / w, w), oracle)
        << ctx << " [D&C]";
  }
  // Specialized scans when the dimensionality matches.
  if (spec.value_columns().size() == 2) {
    auto sky = ComputeSkyline2D(t, spec, SortOptions{}, ExecContext(), "s2d", nullptr);
    ASSERT_TRUE(sky.ok()) << ctx << ": " << sky.status().ToString();
    std::vector<char> rows = ReadAll(*sky);
    ASSERT_EQ(RowMultiset(rows.data(), sky->row_count(), w), oracle)
        << ctx << " [2D]";
  }
  if (spec.value_columns().size() == 3) {
    auto sky = ComputeSkyline3D(t, spec, SortOptions{}, ExecContext(), "s3d", nullptr);
    ASSERT_TRUE(sky.ok()) << ctx << ": " << sky.status().ToString();
    std::vector<char> rows = ReadAll(*sky);
    ASSERT_EQ(RowMultiset(rows.data(), sky->row_count(), w), oracle)
        << ctx << " [3D]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace skyline
