#include "relation/generator.h"

#include <cmath>
#include <limits>

#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

TEST(Generator, PaperShapeTable) {
  auto env = NewMemEnv();
  GeneratorOptions opts;
  opts.num_rows = 1000;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", opts));
  EXPECT_EQ(t.row_count(), 1000u);
  EXPECT_EQ(t.schema().row_width(), 100u);
  EXPECT_EQ(t.schema().num_columns(), 11u);
  // 40 tuples per page -> 25 pages per 1000 tuples.
  EXPECT_EQ(t.page_count(), 25u);
}

TEST(Generator, DeterministicForSeed) {
  auto env = NewMemEnv();
  GeneratorOptions opts;
  opts.num_rows = 200;
  opts.seed = 99;
  ASSERT_OK_AND_ASSIGN(Table a, GenerateTable(env.get(), "a", opts));
  ASSERT_OK_AND_ASSIGN(Table b, GenerateTable(env.get(), "b", opts));
  EXPECT_EQ(testing_util::ReadAll(a), testing_util::ReadAll(b));
}

TEST(Generator, DifferentSeedsDiffer) {
  auto env = NewMemEnv();
  GeneratorOptions opts;
  opts.num_rows = 200;
  opts.seed = 1;
  ASSERT_OK_AND_ASSIGN(Table a, GenerateTable(env.get(), "a", opts));
  opts.seed = 2;
  ASSERT_OK_AND_ASSIGN(Table b, GenerateTable(env.get(), "b", opts));
  EXPECT_NE(testing_util::ReadAll(a), testing_util::ReadAll(b));
}

TEST(Generator, IndependentValuesSpanRange) {
  auto env = NewMemEnv();
  GeneratorOptions opts;
  opts.num_rows = 5000;
  opts.num_attributes = 2;
  opts.payload_bytes = 0;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", opts));
  // Uniform over the full int32 range: observed min/max should be extreme.
  const double span = static_cast<double>(std::numeric_limits<int32_t>::max()) -
                      std::numeric_limits<int32_t>::min();
  EXPECT_LT(t.stats(0).min,
            std::numeric_limits<int32_t>::min() + 0.01 * span);
  EXPECT_GT(t.stats(0).max,
            std::numeric_limits<int32_t>::max() - 0.01 * span);
}

TEST(Generator, SmallDomainRespectsBounds) {
  auto env = NewMemEnv();
  GeneratorOptions opts;
  opts.num_rows = 2000;
  opts.num_attributes = 4;
  opts.small_domain = true;
  opts.domain_lo = 0;
  opts.domain_hi = 9;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", opts));
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_GE(t.stats(c).min, 0.0);
    EXPECT_LE(t.stats(c).max, 9.0);
  }
  // All ten values should appear in 2000 draws.
  EXPECT_EQ(t.stats(0).min, 0.0);
  EXPECT_EQ(t.stats(0).max, 9.0);
}

TEST(Generator, NoPayloadColumn) {
  auto env = NewMemEnv();
  GeneratorOptions opts;
  opts.num_rows = 10;
  opts.num_attributes = 3;
  opts.payload_bytes = 0;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", opts));
  EXPECT_EQ(t.schema().num_columns(), 3u);
  EXPECT_EQ(t.schema().row_width(), 12u);
}

TEST(Generator, RejectsBadOptions) {
  auto env = NewMemEnv();
  GeneratorOptions opts;
  opts.num_attributes = 0;
  EXPECT_TRUE(GenerateTable(env.get(), "t", opts).status().IsInvalidArgument());
  opts.num_attributes = 2;
  opts.small_domain = true;
  opts.domain_lo = 5;
  opts.domain_hi = 1;
  EXPECT_TRUE(GenerateTable(env.get(), "t", opts).status().IsInvalidArgument());
}

/// Sample Pearson correlation between the first two attributes.
double SampleCorrelation(const Table& t) {
  std::vector<char> rows = testing_util::ReadAll(t);
  const size_t width = t.schema().row_width();
  const uint64_t n = t.row_count();
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (uint64_t i = 0; i < n; ++i) {
    RowView row(&t.schema(), rows.data() + i * width);
    const double x = row.GetInt32(0);
    const double y = row.GetInt32(1);
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  return cov / std::sqrt(vx * vy);
}

TEST(Generator, CorrelatedDistributionHasPositiveCorrelation) {
  auto env = NewMemEnv();
  GeneratorOptions opts;
  opts.num_rows = 5000;
  opts.num_attributes = 2;
  opts.payload_bytes = 0;
  opts.distribution = Distribution::kCorrelated;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", opts));
  EXPECT_GT(SampleCorrelation(t), 0.8);
}

TEST(Generator, AntiCorrelatedDistributionHasNegativeCorrelation) {
  auto env = NewMemEnv();
  GeneratorOptions opts;
  opts.num_rows = 5000;
  opts.num_attributes = 2;
  opts.payload_bytes = 0;
  opts.distribution = Distribution::kAntiCorrelated;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", opts));
  EXPECT_LT(SampleCorrelation(t), -0.5);
}

TEST(Generator, IndependentDistributionNearZeroCorrelation) {
  auto env = NewMemEnv();
  GeneratorOptions opts;
  opts.num_rows = 5000;
  opts.num_attributes = 2;
  opts.payload_bytes = 0;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", opts));
  EXPECT_NEAR(SampleCorrelation(t), 0.0, 0.05);
}

TEST(GoodEats, MatchesPaperFigure1) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeGoodEatsTable(env.get(), "g"));
  EXPECT_EQ(t.row_count(), 6u);
  std::vector<char> rows = testing_util::ReadAll(t);
  RowView first(&t.schema(), rows.data());
  EXPECT_EQ(first.GetString(0), "Summer Moon");
  EXPECT_EQ(first.GetInt32(1), 21);
  EXPECT_EQ(first.GetInt32(2), 25);
  EXPECT_EQ(first.GetInt32(3), 19);
  EXPECT_EQ(first.GetFloat64(4), 47.50);
  RowView last(&t.schema(), rows.data() + 5 * t.schema().row_width());
  EXPECT_EQ(last.GetString(0), "Briar Patch BBQ");
  EXPECT_EQ(last.GetFloat64(4), 22.50);
}

}  // namespace
}  // namespace skyline
