#include "storage/heap_file.h"

#include <cstring>
#include <string>
#include <vector>

#include "env/env.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

std::string Rec(size_t width, char fill, int index) {
  std::string r(width, fill);
  std::memcpy(r.data(), &index, sizeof(index));
  return r;
}

class HeapFileTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

TEST_F(HeapFileTest, RoundTripFewRecords) {
  const size_t width = 100;
  IoStats stats;
  HeapFileWriter writer(env_.get(), "f", width, &stats);
  ASSERT_OK(writer.Open());
  for (int i = 0; i < 5; ++i) ASSERT_OK(writer.Append(Rec(width, 'a', i).data()));
  ASSERT_OK(writer.Finish());
  EXPECT_EQ(writer.records_written(), 5u);
  EXPECT_EQ(writer.pages_flushed(), 1u);
  EXPECT_EQ(stats.pages_written, 1u);

  HeapFileReader reader(env_.get(), "f", width, &stats);
  ASSERT_OK(reader.Open());
  EXPECT_EQ(reader.record_count(), 5u);
  EXPECT_EQ(reader.page_count(), 1u);
  for (int i = 0; i < 5; ++i) {
    const char* rec = reader.Next();
    ASSERT_NE(rec, nullptr);
    int idx;
    std::memcpy(&idx, rec, sizeof(idx));
    EXPECT_EQ(idx, i);
  }
  EXPECT_EQ(reader.Next(), nullptr);
  EXPECT_OK(reader.status());
  EXPECT_EQ(stats.pages_read, 1u);
}

TEST_F(HeapFileTest, MultiPageWithPaddedPagesAndUnpaddedTail) {
  const size_t width = 100;  // 40 per page
  HeapFileWriter writer(env_.get(), "f", width, nullptr);
  ASSERT_OK(writer.Open());
  const int n = 103;  // 2 full pages + 23-record tail
  for (int i = 0; i < n; ++i) ASSERT_OK(writer.Append(Rec(width, 'b', i).data()));
  ASSERT_OK(writer.Finish());
  EXPECT_EQ(writer.pages_flushed(), 3u);

  ASSERT_OK_AND_ASSIGN(uint64_t size, env_->FileSize("f"));
  // 2 padded pages + 23 * 100 unpadded tail bytes.
  EXPECT_EQ(size, 2 * kPageSize + 23 * width);

  HeapFileReader reader(env_.get(), "f", width, nullptr);
  ASSERT_OK(reader.Open());
  EXPECT_EQ(reader.record_count(), static_cast<uint64_t>(n));
  EXPECT_EQ(reader.page_count(), 3u);
  int count = 0;
  while (const char* rec = reader.Next()) {
    int idx;
    std::memcpy(&idx, rec, sizeof(idx));
    EXPECT_EQ(idx, count);
    ++count;
  }
  EXPECT_EQ(count, n);
}

TEST_F(HeapFileTest, ExactlyFullPagesHaveNoTail) {
  const size_t width = 100;
  HeapFileWriter writer(env_.get(), "f", width, nullptr);
  ASSERT_OK(writer.Open());
  for (int i = 0; i < 80; ++i) ASSERT_OK(writer.Append(Rec(width, 'c', i).data()));
  ASSERT_OK(writer.Finish());
  ASSERT_OK_AND_ASSIGN(uint64_t size, env_->FileSize("f"));
  EXPECT_EQ(size, 2 * kPageSize);

  HeapFileReader reader(env_.get(), "f", width, nullptr);
  ASSERT_OK(reader.Open());
  EXPECT_EQ(reader.record_count(), 80u);
}

TEST_F(HeapFileTest, EmptyFile) {
  HeapFileWriter writer(env_.get(), "f", 64, nullptr);
  ASSERT_OK(writer.Open());
  ASSERT_OK(writer.Finish());
  HeapFileReader reader(env_.get(), "f", 64, nullptr);
  ASSERT_OK(reader.Open());
  EXPECT_EQ(reader.record_count(), 0u);
  EXPECT_EQ(reader.Next(), nullptr);
  EXPECT_OK(reader.status());
}

TEST_F(HeapFileTest, FinishIsIdempotent) {
  HeapFileWriter writer(env_.get(), "f", 64, nullptr);
  ASSERT_OK(writer.Open());
  ASSERT_OK(writer.Append(std::string(64, 'x').data()));
  ASSERT_OK(writer.Finish());
  ASSERT_OK(writer.Finish());
  HeapFileReader reader(env_.get(), "f", 64, nullptr);
  ASSERT_OK(reader.Open());
  EXPECT_EQ(reader.record_count(), 1u);
}

TEST_F(HeapFileTest, RecordSizeDividesPageExactly) {
  const size_t width = 64;  // 4096 / 64 == 64, no padding ever
  HeapFileWriter writer(env_.get(), "f", width, nullptr);
  ASSERT_OK(writer.Open());
  for (int i = 0; i < 64; ++i) ASSERT_OK(writer.Append(Rec(width, 'd', i).data()));
  ASSERT_OK(writer.Finish());
  ASSERT_OK_AND_ASSIGN(uint64_t size, env_->FileSize("f"));
  EXPECT_EQ(size, kPageSize);
  HeapFileReader reader(env_.get(), "f", width, nullptr);
  ASSERT_OK(reader.Open());
  EXPECT_EQ(reader.record_count(), 64u);
  EXPECT_EQ(reader.page_count(), 1u);
}

TEST_F(HeapFileTest, RecordCountHelpers) {
  ASSERT_OK_AND_ASSIGN(uint64_t c0, HeapFileRecordCount(0, 100));
  EXPECT_EQ(c0, 0u);
  ASSERT_OK_AND_ASSIGN(uint64_t c1, HeapFileRecordCount(2 * kPageSize + 500, 100));
  EXPECT_EQ(c1, 85u);
  EXPECT_TRUE(HeapFileRecordCount(2 * kPageSize + 499, 100)
                  .status()
                  .IsCorruption());
  EXPECT_EQ(HeapFilePageCount(0, 100), 0u);
  EXPECT_EQ(HeapFilePageCount(40, 100), 1u);
  EXPECT_EQ(HeapFilePageCount(41, 100), 2u);
}

TEST_F(HeapFileTest, ReaderCountsPagesRead) {
  const size_t width = 100;
  IoStats stats;
  HeapFileWriter writer(env_.get(), "f", width, nullptr);
  ASSERT_OK(writer.Open());
  for (int i = 0; i < 120; ++i) ASSERT_OK(writer.Append(Rec(width, 'e', i).data()));
  ASSERT_OK(writer.Finish());
  HeapFileReader reader(env_.get(), "f", width, &stats);
  ASSERT_OK(reader.Open());
  while (reader.Next() != nullptr) {
  }
  EXPECT_EQ(stats.pages_read, 3u);
  EXPECT_EQ(reader.records_returned(), 120u);
}

TEST_F(HeapFileTest, OpenMissingFileFails) {
  HeapFileReader reader(env_.get(), "missing", 100, nullptr);
  EXPECT_TRUE(reader.Open().IsNotFound());
}

TEST_F(HeapFileTest, IoStatsArithmetic) {
  IoStats a{10, 5}, b{4, 2};
  IoStats d = a - b;
  EXPECT_EQ(d.pages_read, 6u);
  EXPECT_EQ(d.pages_written, 3u);
  EXPECT_EQ(d.TotalPages(), 9u);
  d += b;
  EXPECT_EQ(d.pages_read, 10u);
  d.Reset();
  EXPECT_EQ(d.TotalPages(), 0u);
}

}  // namespace
}  // namespace skyline
