#include "relation/histogram.h"

#include <cmath>

#include "core/scoring.h"
#include "core/sfs.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

TEST(EquiDepthHistogram, UniformValuesGiveLinearCdf) {
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) values.push_back(i);
  ASSERT_OK_AND_ASSIGN(EquiDepthHistogram h,
                       EquiDepthHistogram::Build(std::move(values), 32));
  EXPECT_DOUBLE_EQ(h.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Cdf(1000), 1.0);
  EXPECT_DOUBLE_EQ(h.Cdf(2000), 1.0);
  EXPECT_NEAR(h.Cdf(250), 0.25, 0.05);
  EXPECT_NEAR(h.Cdf(500), 0.50, 0.05);
  EXPECT_NEAR(h.Cdf(750), 0.75, 0.05);
}

TEST(EquiDepthHistogram, CdfIsMonotone) {
  Random rng(61);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(std::pow(rng.UniformDouble(), 4));  // heavy skew
  }
  ASSERT_OK_AND_ASSIGN(EquiDepthHistogram h,
                       EquiDepthHistogram::Build(values, 16));
  double prev = -1;
  for (double v = -0.1; v <= 1.1; v += 0.001) {
    const double cdf = h.Cdf(v);
    EXPECT_GE(cdf, prev);
    EXPECT_GE(cdf, 0.0);
    EXPECT_LE(cdf, 1.0);
    prev = cdf;
  }
}

TEST(EquiDepthHistogram, SkewedValuesStillEquiDepth) {
  // Under heavy skew, the median must still map to ~0.5 rank (unlike
  // min-max normalization, which maps it near 0).
  Random rng(62);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(std::pow(rng.UniformDouble(), 8));
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  ASSERT_OK_AND_ASSIGN(EquiDepthHistogram h,
                       EquiDepthHistogram::Build(values, 64));
  EXPECT_NEAR(h.Cdf(median), 0.5, 0.05);
  // Min-max normalization would put the median at (median - 0) / span:
  const double minmax = median / sorted.back();
  EXPECT_LT(minmax, 0.05);  // the skew the histogram corrects
}

TEST(EquiDepthHistogram, DuplicateHeavyValues) {
  std::vector<double> values(900, 5.0);
  for (int i = 0; i < 100; ++i) values.push_back(10.0);
  ASSERT_OK_AND_ASSIGN(EquiDepthHistogram h,
                       EquiDepthHistogram::Build(values, 10));
  EXPECT_LE(h.Cdf(5.0), 0.91);
  EXPECT_GE(h.Cdf(5.0), 0.5);
  EXPECT_DOUBLE_EQ(h.Cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Cdf(4.0), 0.0);
}

TEST(EquiDepthHistogram, ConstantColumn) {
  std::vector<double> values(50, 7.0);
  ASSERT_OK_AND_ASSIGN(EquiDepthHistogram h,
                       EquiDepthHistogram::Build(values, 8));
  EXPECT_DOUBLE_EQ(h.Cdf(7.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Cdf(6.9), 0.0);
}

TEST(EquiDepthHistogram, RejectsBadInput) {
  EXPECT_TRUE(EquiDepthHistogram::Build({}, 4).status().IsInvalidArgument());
  EXPECT_TRUE(
      EquiDepthHistogram::Build({1.0}, 0).status().IsInvalidArgument());
}

TEST(BuildColumnHistogram, FullScanAndSampleAgreeRoughly) {
  auto env = NewMemEnv();
  auto t = MakeUniformTable(env.get(), "t", 20000, 2, 63, 0);
  ASSERT_TRUE(t.ok());
  ASSERT_OK_AND_ASSIGN(EquiDepthHistogram full,
                       BuildColumnHistogram(*t, 0, 32));
  ASSERT_OK_AND_ASSIGN(EquiDepthHistogram sampled,
                       BuildColumnHistogram(*t, 0, 32, 2000, 7));
  for (double q : {-1e9, -1e8, 0.0, 1e8, 1e9}) {
    EXPECT_NEAR(full.Cdf(q), sampled.Cdf(q), 0.05) << q;
  }
}

TEST(BuildColumnHistogram, RejectsBadColumns) {
  auto env = NewMemEnv();
  auto guide = MakeGoodEatsTable(env.get(), "g");
  ASSERT_TRUE(guide.ok());
  EXPECT_TRUE(BuildColumnHistogram(*guide, 0, 8).status().IsInvalidArgument());
  EXPECT_TRUE(BuildColumnHistogram(*guide, 99, 8).status().IsInvalidArgument());
}

class RankEntropyTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

SkylineSpec MaxSpec(const Table& t, int dims) {
  std::vector<Criterion> criteria;
  for (int i = 0; i < dims; ++i) {
    criteria.push_back({"a" + std::to_string(i), Directive::kMax});
  }
  auto result = SkylineSpec::Make(t.schema(), std::move(criteria));
  SKYLINE_CHECK(result.ok());
  return std::move(result).value();
}

TEST_F(RankEntropyTest, OrderingIsTopological) {
  GeneratorOptions gen;
  gen.num_rows = 500;
  gen.num_attributes = 3;
  gen.payload_bytes = 0;
  gen.skew_exponent = 6.0;
  gen.seed = 64;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env_.get(), "t", gen));
  SkylineSpec spec = MaxSpec(t, 3);
  ASSERT_OK_AND_ASSIGN(RankEntropyOrdering ord,
                       RankEntropyOrdering::Build(&spec, t, 32, 200));
  std::vector<char> rows = ReadAll(t);
  const size_t w = t.schema().row_width();
  for (uint64_t i = 0; i < t.row_count(); ++i) {
    for (uint64_t j = 0; j < t.row_count(); ++j) {
      if (Dominates(spec, rows.data() + i * w, rows.data() + j * w)) {
        EXPECT_LT(ord.Compare(rows.data() + i * w, rows.data() + j * w), 0)
            << i << " dominates " << j << " but sorts after it";
      }
    }
  }
}

TEST_F(RankEntropyTest, SfsWithRankOrderingMatchesOracleOnSkewedData) {
  GeneratorOptions gen;
  gen.num_rows = 3000;
  gen.num_attributes = 5;
  gen.payload_bytes = 60;
  gen.skew_exponent = 8.0;
  gen.seed = 65;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env_.get(), "t", gen));
  SkylineSpec spec = MaxSpec(t, 5);
  ASSERT_OK_AND_ASSIGN(RankEntropyOrdering ord,
                       RankEntropyOrdering::Build(&spec, t, 64, 500));
  SfsOptions opts;
  opts.presort = Presort::kCustom;
  opts.custom_ordering = &ord;
  opts.window_pages = 1;
  ASSERT_OK_AND_ASSIGN(Table sky, ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", nullptr));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
}

TEST_F(RankEntropyTest, RankAtLeastMatchesMinMaxOnSkewedData) {
  // Rank normalization computes the dominance probability exactly under
  // any marginal distribution; min-max only approximates it under skew.
  // Empirically the two are close (the paper's Section 4.3 robustness
  // claim — a monotone marginal transform barely disturbs the relative
  // order), so assert rank is at least as effective here, not dominant.
  GeneratorOptions gen;
  gen.num_rows = 20000;
  gen.num_attributes = 6;
  gen.payload_bytes = 60;
  gen.skew_exponent = 10.0;
  gen.seed = 66;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env_.get(), "t", gen));
  SkylineSpec spec = MaxSpec(t, 6);

  SfsOptions minmax;
  minmax.presort = Presort::kEntropy;
  minmax.window_pages = 1;
  minmax.use_projection = false;
  SkylineRunStats minmax_stats;
  ASSERT_OK(ComputeSkylineSfs(t, spec, minmax, ExecContext(), "o1", &minmax_stats).status());

  ASSERT_OK_AND_ASSIGN(RankEntropyOrdering ord,
                       RankEntropyOrdering::Build(&spec, t, 64));
  SfsOptions rank;
  rank.presort = Presort::kCustom;
  rank.custom_ordering = &ord;
  rank.window_pages = 1;
  rank.use_projection = false;
  SkylineRunStats rank_stats;
  ASSERT_OK(ComputeSkylineSfs(t, spec, rank, ExecContext(), "o2", &rank_stats).status());

  EXPECT_EQ(rank_stats.output_rows, minmax_stats.output_rows);
  EXPECT_LE(rank_stats.spilled_tuples, minmax_stats.spilled_tuples);
}

TEST_F(RankEntropyTest, EqualsEntropyOnUniformData) {
  // On uniform marginals both normalizations approximate the same order;
  // spill counts should be in the same ballpark.
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 10000, 5, 67));
  SkylineSpec spec = MaxSpec(t, 5);
  SfsOptions minmax;
  minmax.window_pages = 1;
  minmax.use_projection = false;
  SkylineRunStats minmax_stats;
  ASSERT_OK(ComputeSkylineSfs(t, spec, minmax, ExecContext(), "o1", &minmax_stats).status());
  ASSERT_OK_AND_ASSIGN(RankEntropyOrdering ord,
                       RankEntropyOrdering::Build(&spec, t, 64));
  SfsOptions rank;
  rank.presort = Presort::kCustom;
  rank.custom_ordering = &ord;
  rank.window_pages = 1;
  rank.use_projection = false;
  SkylineRunStats rank_stats;
  ASSERT_OK(ComputeSkylineSfs(t, spec, rank, ExecContext(), "o2", &rank_stats).status());
  EXPECT_LT(rank_stats.spilled_tuples, minmax_stats.spilled_tuples * 2 + 100);
  EXPECT_LT(minmax_stats.spilled_tuples, rank_stats.spilled_tuples * 2 + 100);
}

}  // namespace
}  // namespace skyline
