// End-to-end integration tests: realistic pipelines over the full stack
// (generator -> heap files -> external sort -> SFS/BNL -> exec operators),
// including the paper's headline behavioural claims at reduced scale.

#include "core/skyline.h"
#include "exec/query.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

SkylineSpec MaxSpec(const Table& t, int dims) {
  std::vector<Criterion> criteria;
  for (int i = 0; i < dims; ++i) {
    criteria.push_back({"a" + std::to_string(i), Directive::kMax});
  }
  auto result = SkylineSpec::Make(t.schema(), std::move(criteria));
  SKYLINE_CHECK(result.ok());
  return std::move(result).value();
}

TEST(Integration, PaperShapedWorkloadEndToEnd) {
  // A scaled-down version of the paper's experiment: 20k 100-byte tuples,
  // 5-dim skyline, small windows, external sort with a small buffer.
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 20'000;
  gen.seed = 77;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", gen));
  ASSERT_EQ(t.page_count(), 500u);
  SkylineSpec spec = MaxSpec(t, 5);

  SfsOptions sfs_opts;
  sfs_opts.window_pages = 2;
  sfs_opts.sort_options.buffer_pages = 50;
  SkylineRunStats sfs_stats;
  ASSERT_OK_AND_ASSIGN(Table sfs_sky,
                       ComputeSkylineSfs(t, spec, sfs_opts, ExecContext(), "sfs", &sfs_stats));

  BnlOptions bnl_opts;
  bnl_opts.window_pages = 2;
  SkylineRunStats bnl_stats;
  ASSERT_OK_AND_ASSIGN(Table bnl_sky,
                       ComputeSkylineBnl(t, spec, bnl_opts, ExecContext(), "bnl", &bnl_stats));

  const size_t w = t.schema().row_width();
  std::vector<char> a = ReadAll(sfs_sky);
  std::vector<char> b = ReadAll(bnl_sky);
  EXPECT_EQ(RowMultiset(a.data(), sfs_sky.row_count(), w),
            RowMultiset(b.data(), bnl_sky.row_count(), w));

  // Skyline size should be in the ballpark of the estimator.
  const double expected = ExpectedSkylineSize(gen.num_rows, 5);
  EXPECT_GT(sfs_sky.row_count(), expected / 3);
  EXPECT_LT(sfs_sky.row_count(), expected * 3);
  EXPECT_GT(sfs_stats.sort_stats.runs_generated, 1u);
}

TEST(Integration, EntropyOrderingSpillsNoMoreThanNested) {
  // The paper's core claim for the w/E optimization: entropy-ordered input
  // fills the window with high-dn tuples, eliminating more tuples per pass.
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env.get(), "t", 12'000, 6, 78));
  SkylineSpec spec = MaxSpec(t, 6);
  SfsOptions opts;
  opts.window_pages = 1;
  opts.use_projection = false;

  opts.presort = Presort::kNested;
  SkylineRunStats nested;
  ASSERT_OK(ComputeSkylineSfs(t, spec, opts, ExecContext(), "o1", &nested).status());

  opts.presort = Presort::kEntropy;
  SkylineRunStats entropy;
  ASSERT_OK(ComputeSkylineSfs(t, spec, opts, ExecContext(), "o2", &entropy).status());

  EXPECT_LT(entropy.spilled_tuples, nested.spilled_tuples);
  EXPECT_LE(entropy.ExtraPages(), nested.ExtraPages());
}

TEST(Integration, SfsIoNeverExceedsBnlWithReverseEntropyInput) {
  // BNL w/RE is the paper's pathological case; SFS on the same data is
  // dramatically cheaper in extra pages.
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env.get(), "t", 8'000, 5, 79));
  SkylineSpec spec = MaxSpec(t, 5);

  SfsOptions sfs_opts;
  sfs_opts.window_pages = 2;
  SkylineRunStats sfs_stats;
  ASSERT_OK(ComputeSkylineSfs(t, spec, sfs_opts, ExecContext(), "sfs", &sfs_stats).status());

  EntropyOrdering entropy(&spec, t);
  ReverseOrdering reverse(&entropy);
  BnlOptions bnl_opts;
  bnl_opts.window_pages = 2;
  bnl_opts.input_ordering = &reverse;
  SkylineRunStats bnl_stats;
  ASSERT_OK(ComputeSkylineBnl(t, spec, bnl_opts, ExecContext(), "bnl", &bnl_stats).status());

  EXPECT_LT(sfs_stats.ExtraPages(), bnl_stats.ExtraPages());
  EXPECT_LE(sfs_stats.passes, bnl_stats.passes);
}

TEST(Integration, AntiCorrelatedDegeneratesTowardManyPasses) {
  // Section 6: with anti-correlated criteria the skyline is huge and both
  // algorithms degenerate toward |R|/|window| passes.
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 4'000;
  gen.num_attributes = 4;
  gen.payload_bytes = 0;
  gen.distribution = Distribution::kAntiCorrelated;
  gen.seed = 80;
  ASSERT_OK_AND_ASSIGN(Table anti, GenerateTable(env.get(), "a", gen));
  gen.distribution = Distribution::kIndependent;
  ASSERT_OK_AND_ASSIGN(Table indep, GenerateTable(env.get(), "i", gen));
  SkylineSpec anti_spec = MaxSpec(anti, 4);
  SkylineSpec indep_spec = MaxSpec(indep, 4);

  SfsOptions opts;
  opts.window_pages = 1;
  opts.use_projection = false;
  SkylineRunStats anti_stats, indep_stats;
  ASSERT_OK_AND_ASSIGN(Table anti_sky,
                       ComputeSkylineSfs(anti, anti_spec, opts, ExecContext(), "as", &anti_stats));
  ASSERT_OK_AND_ASSIGN(
      Table indep_sky,
      ComputeSkylineSfs(indep, indep_spec, opts, ExecContext(), "is", &indep_stats));

  EXPECT_GT(anti_sky.row_count(), indep_sky.row_count() * 5);
  EXPECT_GT(anti_stats.passes, indep_stats.passes);
}

TEST(Integration, HotelFinderPipelineWithDiffAndLimit) {
  // Domain scenario: best hotels per city (diff), filtered, top-N.
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(
      Schema schema,
      Schema::Make({ColumnDef::FixedString("name", 16), ColumnDef::Int32("city"),
                    ColumnDef::Int32("stars"), ColumnDef::Int32("price")}));
  TableBuilder builder(env.get(), "hotels", schema);
  ASSERT_OK(builder.Open());
  Random rng(81);
  RowBuffer row(&builder.schema());
  for (int i = 0; i < 3000; ++i) {
    row.SetString(0, "hotel_" + std::to_string(i));
    row.SetInt32(1, rng.UniformInt32(0, 9));
    row.SetInt32(2, rng.UniformInt32(1, 5));
    row.SetInt32(3, rng.UniformInt32(40, 400));
    ASSERT_OK(builder.Append(row));
  }
  ASSERT_OK_AND_ASSIGN(Table hotels, builder.Finish());

  Query query(env.get(), &hotels, "q");
  query
      .Where([](const RowView& r) { return r.GetInt32(3) <= 300; })
      .SkylineOf({{"city", Directive::kDiff},
                  {"stars", Directive::kMax},
                  {"price", Directive::kMin}})
      .Limit(12);
  int count = 0;
  ASSERT_OK(query.Run([&](const RowView& r) {
    EXPECT_LE(r.GetInt32(3), 300);
    ++count;
    return Status::OK();
  }));
  EXPECT_EQ(count, 12);
}

TEST(Integration, PosixEnvEndToEnd) {
  // The same pipeline against real files.
  auto env = NewPosixEnv();
  const std::string dir = ::testing::TempDir();
  GeneratorOptions gen;
  gen.num_rows = 2'000;
  gen.num_attributes = 4;
  gen.seed = 82;
  ASSERT_OK_AND_ASSIGN(Table t,
                       GenerateTable(env.get(), dir + "sky_it_table", gen));
  SkylineSpec spec = MaxSpec(t, 4);
  SfsOptions opts;
  opts.window_pages = 1;
  ASSERT_OK_AND_ASSIGN(
      Table sky, ComputeSkylineSfs(t, spec, opts, ExecContext(), dir + "sky_it_out", nullptr));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
  ASSERT_OK(env->DeleteFile(dir + "sky_it_table"));
  ASSERT_OK(env->DeleteFile(dir + "sky_it_out"));
}

TEST(Integration, StrataPipelinePaperShaped) {
  // Scaled version of the paper's strata run: 4-dim, first 4 strata.
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 10'000;
  gen.seed = 83;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", gen));
  SkylineSpec spec = MaxSpec(t, 4);
  StrataOptions opts;
  opts.num_strata = 4;
  StrataStats stats;
  ASSERT_OK_AND_ASSIGN(std::vector<Table> strata,
                       ComputeStrataSfs(t, spec, opts, ExecContext(), "st", &stats));
  ASSERT_EQ(strata.size(), 4u);
  // Strata sizes grow with depth on uniform data (paper: 460/1430/2766/4444).
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_GT(strata[i].row_count(), strata[i - 1].row_count());
  }
  uint64_t total = 0;
  for (const auto& s : strata) total += s.row_count();
  EXPECT_LT(total, t.row_count());
}

TEST(Integration, DimensionalReductionThenSfsMatchesDirect) {
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 15'000;
  gen.num_attributes = 4;
  gen.payload_bytes = 60;
  gen.small_domain = true;
  gen.domain_lo = 0;
  gen.domain_hi = 9;
  gen.seed = 84;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", gen));
  SkylineSpec spec = MaxSpec(t, 4);

  DimReduceStats red_stats;
  ASSERT_OK_AND_ASSIGN(
      Table reduced,
      DimensionalReduction(t, spec, SortOptions{}, ExecContext(), "red", &red_stats));
  EXPECT_LT(red_stats.ReductionRatio(), 0.5);

  SfsOptions opts;
  opts.presort = Presort::kNone;  // reduction output is nested-sorted
  ASSERT_OK_AND_ASSIGN(Table sky_reduced,
                       ComputeSkylineSfs(reduced, spec, opts, ExecContext(), "o1", nullptr));
  ASSERT_OK_AND_ASSIGN(
      Table sky_direct,
      ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "o2", nullptr));
  // Identical skyline-attribute multisets (representatives may differ in
  // payload when tuples tie on all criteria).
  std::vector<char> a = ReadAll(sky_reduced);
  std::vector<char> b = ReadAll(sky_direct);
  EXPECT_EQ(testing_util::ProjectedMultiset(spec, a.data(),
                                            sky_reduced.row_count(),
                                            t.schema().row_width()),
            testing_util::ProjectedMultiset(spec, b.data(),
                                            sky_direct.row_count(),
                                            t.schema().row_width()));
}

TEST(Integration, LargeScaleSfsConsistencyAcrossWindows) {
  // 50k tuples, 6 dims: too big for the naive oracle; check window-size
  // independence of the result instead.
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 50'000;
  gen.seed = 85;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", gen));
  SkylineSpec spec = MaxSpec(t, 6);
  const size_t w = t.schema().row_width();
  std::multiset<std::string> reference;
  for (size_t pages : {1u, 8u, 1024u}) {
    SfsOptions opts;
    opts.window_pages = pages;
    SkylineRunStats stats;
    ASSERT_OK_AND_ASSIGN(
        Table sky,
        ComputeSkylineSfs(t, spec, opts, ExecContext(), "o" + std::to_string(pages), &stats));
    std::vector<char> rows = ReadAll(sky);
    auto got = RowMultiset(rows.data(), sky.row_count(), w);
    if (reference.empty()) {
      reference = std::move(got);
    } else {
      EXPECT_EQ(got, reference) << "window_pages=" << pages;
    }
  }
}

}  // namespace
}  // namespace skyline
