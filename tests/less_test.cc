#include "core/less.h"

#include "core/sfs.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

class LessTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

SkylineSpec MaxSpec(const Table& t, int dims) {
  std::vector<Criterion> criteria;
  for (int i = 0; i < dims; ++i) {
    criteria.push_back({"a" + std::to_string(i), Directive::kMax});
  }
  auto result = SkylineSpec::Make(t.schema(), std::move(criteria));
  SKYLINE_CHECK(result.ok());
  return std::move(result).value();
}

TEST_F(LessTest, MatchesOracle) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 2000, 4, 90));
  SkylineSpec spec = MaxSpec(t, 4);
  LessStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineLess(t, spec, LessOptions{}, ExecContext(), "out", &stats));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
  EXPECT_GT(stats.ef_dropped, 0u);
  EXPECT_EQ(stats.run.output_rows, sky.row_count());
}

TEST_F(LessTest, AgreesWithSfsAcrossSeeds) {
  for (uint64_t seed : {91u, 92u, 93u}) {
    ASSERT_OK_AND_ASSIGN(
        Table t, MakeUniformTable(env_.get(), "t" + std::to_string(seed), 3000,
                                  6, seed));
    SkylineSpec spec = MaxSpec(t, 6);
    ASSERT_OK_AND_ASSIGN(Table less_sky,
                         ComputeSkylineLess(t, spec, LessOptions{}, ExecContext(), "l", nullptr));
    ASSERT_OK_AND_ASSIGN(Table sfs_sky,
                         ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "s", nullptr));
    const size_t w = t.schema().row_width();
    std::vector<char> a = ReadAll(less_sky);
    std::vector<char> b = ReadAll(sfs_sky);
    EXPECT_EQ(RowMultiset(a.data(), less_sky.row_count(), w),
              RowMultiset(b.data(), sfs_sky.row_count(), w))
        << "seed " << seed;
  }
}

TEST_F(LessTest, EliminationShrinksSortInput) {
  // The whole point: most dominated tuples never reach the sort runs, so
  // sort I/O drops substantially vs plain SFS (low dimensionality keeps
  // the skyline small, maximizing elimination).
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 20000, 3, 94));
  SkylineSpec spec = MaxSpec(t, 3);

  LessOptions less_opts;
  less_opts.sort_options.buffer_pages = 8;  // force external behaviour
  LessStats less_stats;
  ASSERT_OK(ComputeSkylineLess(t, spec, less_opts, ExecContext(), "l", &less_stats).status());

  SfsOptions sfs_opts;
  sfs_opts.sort_options.buffer_pages = 8;
  SkylineRunStats sfs_stats;
  ASSERT_OK(ComputeSkylineSfs(t, spec, sfs_opts, ExecContext(), "s", &sfs_stats).status());

  EXPECT_GT(less_stats.ef_dropped, t.row_count() / 2);
  EXPECT_LT(less_stats.run.sort_stats.io.TotalPages(),
            sfs_stats.sort_stats.io.TotalPages() / 2);
}

TEST_F(LessTest, TinyEfWindowStillCorrect) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 1500, 5, 95));
  SkylineSpec spec = MaxSpec(t, 5);
  LessOptions opts;
  opts.ef_window_pages = 1;
  opts.window_pages = 1;
  opts.use_projection = false;
  ASSERT_OK_AND_ASSIGN(Table sky, ComputeSkylineLess(t, spec, opts, ExecContext(), "out", nullptr));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
}

TEST_F(LessTest, FilterNeverDropsSkylineTuples) {
  // Run the elimination filter alone over the input and verify every
  // oracle skyline tuple survives.
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 1000, 4, 96, 0));
  SkylineSpec spec = MaxSpec(t, 4);
  EntropyScorer scorer(&spec, t);
  EliminationFilter ef(&spec, &scorer, 1);
  std::vector<char> rows = ReadAll(t);
  const size_t w = t.schema().row_width();
  std::vector<uint64_t> survivors;
  for (uint64_t i = 0; i < t.row_count(); ++i) {
    if (ef.Keep(rows.data() + i * w)) survivors.push_back(i);
  }
  std::set<uint64_t> survivor_set(survivors.begin(), survivors.end());
  for (uint64_t idx : NaiveSkylineIndices(spec, rows.data(), t.row_count())) {
    EXPECT_TRUE(survivor_set.count(idx)) << "skyline tuple " << idx
                                         << " wrongly eliminated";
  }
  EXPECT_EQ(ef.dropped() + survivors.size(), t.row_count());
}

TEST_F(LessTest, EquivalentTuplesAllSurvive) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{5, 5}, {5, 5}, {1, 1}}));
  SkylineSpec spec = MaxSpec(t, 2);
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineLess(t, spec, LessOptions{}, ExecContext(), "out", nullptr));
  EXPECT_EQ(sky.row_count(), 2u);
}

TEST_F(LessTest, EmptyInput) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {}));
  SkylineSpec spec = MaxSpec(t, 2);
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineLess(t, spec, LessOptions{}, ExecContext(), "out", nullptr));
  EXPECT_EQ(sky.row_count(), 0u);
}

TEST_F(LessTest, SchemaMismatchRejected) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{1, 2}}));
  ASSERT_OK_AND_ASSIGN(Table o, MakeIntTable(env_.get(), "o", 3, {{1, 2, 3}}));
  ASSERT_OK_AND_ASSIGN(SkylineSpec spec,
                       SkylineSpec::Make(o.schema(), {{"a2", Directive::kMax}}));
  EXPECT_TRUE(ComputeSkylineLess(t, spec, LessOptions{}, ExecContext(), "out", nullptr)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace skyline
