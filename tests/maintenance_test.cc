#include "core/maintenance.h"

#include <set>

#include "core/naive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;
using testing_util::ReadAll;
using testing_util::RowMultiset;

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema =
        Schema::Make({ColumnDef::Int32("a0"), ColumnDef::Int32("a1")});
    ASSERT_TRUE(schema.ok());
    schema_ = std::move(schema).value();
    auto spec = SkylineSpec::Make(
        schema_, {{"a0", Directive::kMax}, {"a1", Directive::kMax}});
    ASSERT_TRUE(spec.ok());
    spec_.emplace(std::move(spec).value());
  }

  std::vector<char> Row(int32_t a, int32_t b) {
    std::vector<char> row(8);
    std::memcpy(row.data(), &a, 4);
    std::memcpy(row.data() + 4, &b, 4);
    return row;
  }

  Schema schema_;
  std::optional<SkylineSpec> spec_;
};

TEST_F(MaintenanceTest, InsertBuildsSkyline) {
  SkylineMaintainer m(&*spec_);
  EXPECT_EQ(m.Insert(Row(2, 2).data()), SkylineMaintainer::InsertResult::kAdded);
  EXPECT_EQ(m.Insert(Row(1, 1).data()),
            SkylineMaintainer::InsertResult::kDominated);
  EXPECT_EQ(m.Insert(Row(4, 1).data()), SkylineMaintainer::InsertResult::kAdded);
  EXPECT_EQ(m.size(), 2u);
}

TEST_F(MaintenanceTest, DominatingInsertEvicts) {
  SkylineMaintainer m(&*spec_);
  m.Insert(Row(2, 2).data());
  m.Insert(Row(1, 4).data());
  // (5,5) trumps everything — the paper's "single insertion invalidates
  // the index" case, handled in one O(|skyline|) pass.
  EXPECT_EQ(m.Insert(Row(5, 5).data()),
            SkylineMaintainer::InsertResult::kAddedEvicted);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.evictions(), 2u);
}

TEST_F(MaintenanceTest, EquivalentsBothKept) {
  SkylineMaintainer m(&*spec_);
  m.Insert(Row(3, 3).data());
  EXPECT_EQ(m.Insert(Row(3, 3).data()),
            SkylineMaintainer::InsertResult::kAdded);
  EXPECT_EQ(m.size(), 2u);
}

TEST_F(MaintenanceTest, RemoveNonMemberIsFree) {
  SkylineMaintainer m(&*spec_);
  m.Insert(Row(5, 5).data());
  EXPECT_EQ(m.Remove(Row(1, 1).data()),
            SkylineMaintainer::RemoveResult::kNotMember);
  EXPECT_EQ(m.size(), 1u);
}

TEST_F(MaintenanceTest, RemoveMemberFlagsRecompute) {
  SkylineMaintainer m(&*spec_);
  m.Insert(Row(5, 5).data());
  m.Insert(Row(1, 9).data());
  EXPECT_EQ(m.Remove(Row(5, 5).data()),
            SkylineMaintainer::RemoveResult::kMemberRemovedRecomputeNeeded);
  EXPECT_EQ(m.size(), 1u);
}

TEST_F(MaintenanceTest, RemoveDuplicateMemberStaysExact) {
  SkylineMaintainer m(&*spec_);
  m.Insert(Row(5, 5).data());
  m.Insert(Row(5, 5).data());
  EXPECT_EQ(m.Remove(Row(5, 5).data()),
            SkylineMaintainer::RemoveResult::kDuplicateMemberRemoved);
  EXPECT_EQ(m.size(), 1u);
}

TEST_F(MaintenanceTest, RandomInsertStreamMatchesOracle) {
  auto env = NewMemEnv();
  for (uint64_t seed : {701u, 702u, 703u}) {
    auto t = MakeUniformTable(env.get(), "t" + std::to_string(seed), 1500, 4,
                              seed, 0);
    ASSERT_TRUE(t.ok());
    std::vector<Criterion> criteria;
    for (int i = 0; i < 4; ++i) {
      criteria.push_back({"a" + std::to_string(i), Directive::kMax});
    }
    auto spec = SkylineSpec::Make(t->schema(), criteria);
    ASSERT_TRUE(spec.ok());
    SkylineMaintainer m(&*spec);
    std::vector<char> rows = ReadAll(*t);
    const size_t w = t->schema().row_width();
    for (uint64_t i = 0; i < t->row_count(); ++i) {
      m.Insert(rows.data() + i * w);
    }
    std::multiset<std::string> maintained;
    for (size_t i = 0; i < m.size(); ++i) {
      maintained.emplace(m.MemberAt(i), w);
    }
    EXPECT_EQ(maintained, testing_util::OracleSkylineMultiset(*t, *spec))
        << "seed " << seed;
  }
}

TEST_F(MaintenanceTest, InsertAfterMemberRemovalStillSound) {
  // After a member removal the set is a subset of the true skyline; new
  // inserts must still behave (never produce dominated members).
  SkylineMaintainer m(&*spec_);
  m.Insert(Row(5, 5).data());
  m.Insert(Row(9, 1).data());
  m.Remove(Row(5, 5).data());
  m.Insert(Row(2, 2).data());  // would have been dominated by (5,5)
  m.Insert(Row(3, 3).data());
  // Members must be mutually non-dominating.
  for (size_t i = 0; i < m.size(); ++i) {
    for (size_t j = 0; j < m.size(); ++j) {
      EXPECT_FALSE(Dominates(*spec_, m.MemberAt(i), m.MemberAt(j)));
    }
  }
}

TEST_F(MaintenanceTest, SeedAdoptsComputedSkylineVerbatim) {
  // Seed() trusts the caller's rows (a previously computed skyline) and
  // adopts them without dominance checks — the bulk path the engine's
  // result cache uses when it patches an entry.
  SkylineMaintainer m(&*spec_);
  m.Insert(Row(1, 1).data());  // replaced by the seed below
  std::vector<char> skyline;
  for (const auto& row : {Row(9, 1), Row(5, 5), Row(1, 9)}) {
    skyline.insert(skyline.end(), row.begin(), row.end());
  }
  m.Seed(skyline.data(), 3);
  ASSERT_EQ(m.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(std::memcmp(m.MemberAt(i), skyline.data() + i * 8, 8), 0);
  }
  // The seeded set behaves: a dominating insert evicts, a dominated one
  // bounces, membership removal is detected.
  EXPECT_EQ(m.Insert(Row(6, 6).data()),
            SkylineMaintainer::InsertResult::kAddedEvicted);
  EXPECT_EQ(m.Insert(Row(2, 2).data()),
            SkylineMaintainer::InsertResult::kDominated);
  EXPECT_EQ(m.Remove(Row(9, 1).data()),
            SkylineMaintainer::RemoveResult::kMemberRemovedRecomputeNeeded);
}

TEST_F(MaintenanceTest, SeedReplacesAndClearsPriorMembers) {
  SkylineMaintainer m(&*spec_);
  m.Insert(Row(9, 9).data());
  m.Seed(nullptr, 0);  // empty seed: a fresh maintainer
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Insert(Row(1, 1).data()),
            SkylineMaintainer::InsertResult::kAdded);
}

TEST_F(MaintenanceTest, FromComputedSkylineMatchesInsertBuild) {
  auto env = NewMemEnv();
  auto t = MakeUniformTable(env.get(), "t", 800, 3, 811, 0);
  ASSERT_TRUE(t.ok());
  std::vector<Criterion> criteria;
  for (int i = 0; i < 3; ++i) {
    criteria.push_back({"a" + std::to_string(i), Directive::kMax});
  }
  auto spec = SkylineSpec::Make(t->schema(), criteria);
  ASSERT_TRUE(spec.ok());
  const size_t w = t->schema().row_width();

  // Build one maintainer by streaming inserts, then adopt its members
  // into a second via FromComputedSkyline: both must behave identically
  // against the same follow-up mutation.
  SkylineMaintainer streamed(&*spec);
  std::vector<char> rows = ReadAll(*t);
  for (uint64_t i = 0; i < t->row_count(); ++i) {
    streamed.Insert(rows.data() + i * w);
  }
  std::vector<char> members;
  for (size_t i = 0; i < streamed.size(); ++i) {
    members.insert(members.end(), streamed.MemberAt(i),
                   streamed.MemberAt(i) + w);
  }
  SkylineMaintainer adopted = SkylineMaintainer::FromComputedSkyline(
      &*spec, members.data(), streamed.size());
  ASSERT_EQ(adopted.size(), streamed.size());

  std::vector<char> dominator(w, 0);
  const int32_t big = INT32_MAX;
  for (int i = 0; i < 3; ++i) {
    std::memcpy(dominator.data() + i * 4, &big, 4);
  }
  EXPECT_EQ(streamed.Insert(dominator.data()),
            SkylineMaintainer::InsertResult::kAddedEvicted);
  EXPECT_EQ(adopted.Insert(dominator.data()),
            SkylineMaintainer::InsertResult::kAddedEvicted);
  EXPECT_EQ(streamed.size(), adopted.size());
  EXPECT_EQ(streamed.size(), 1u);
}

TEST_F(MaintenanceTest, DiffGroupsMaintainedIndependently) {
  auto schema = Schema::Make({ColumnDef::Int32("g"), ColumnDef::Int32("v")});
  ASSERT_TRUE(schema.ok());
  auto spec = SkylineSpec::Make(
      schema.value(), {{"g", Directive::kDiff}, {"v", Directive::kMax}});
  ASSERT_TRUE(spec.ok());
  SkylineMaintainer m(&spec.value());
  auto row = [&](int32_t g, int32_t v) {
    std::vector<char> r(8);
    std::memcpy(r.data(), &g, 4);
    std::memcpy(r.data() + 4, &v, 4);
    return r;
  };
  m.Insert(row(1, 5).data());
  m.Insert(row(2, 3).data());  // different group: incomparable
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.Insert(row(1, 9).data()),
            SkylineMaintainer::InsertResult::kAddedEvicted);
  EXPECT_EQ(m.size(), 2u);  // (1,9) evicted (1,5); (2,3) untouched
}

}  // namespace
}  // namespace skyline
