#include "core/naive.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;

class NaiveTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

TEST_F(NaiveTest, PaperProofExample) {
  // {(4,1), (2,2), (1,4)}: all three are skyline (Theorem 4's example).
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{4, 1}, {2, 2}, {1, 4}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  std::vector<char> rows = testing_util::ReadAll(t);
  EXPECT_EQ(NaiveSkylineIndices(spec, rows.data(), 3),
            (std::vector<uint64_t>{0, 1, 2}));
}

TEST_F(NaiveTest, TotallyOrderedChainHasSingletonSkyline) {
  ASSERT_OK_AND_ASSIGN(
      Table t,
      MakeIntTable(env_.get(), "t", 2, {{1, 1}, {2, 2}, {3, 3}, {4, 4}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  std::vector<char> rows = testing_util::ReadAll(t);
  EXPECT_EQ(NaiveSkylineIndices(spec, rows.data(), 4),
            (std::vector<uint64_t>{3}));
}

TEST_F(NaiveTest, EquivalentTuplesAllKept) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{5, 5}, {5, 5}, {1, 1}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  std::vector<char> rows = testing_util::ReadAll(t);
  EXPECT_EQ(NaiveSkylineIndices(spec, rows.data(), 3),
            (std::vector<uint64_t>{0, 1}));
}

TEST_F(NaiveTest, EmptyInput) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  ASSERT_OK_AND_ASSIGN(std::vector<char> sky, NaiveSkylineRows(t, spec));
  EXPECT_TRUE(sky.empty());
}

TEST_F(NaiveTest, SingleTupleIsSkyline) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{0, 0}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  ASSERT_OK_AND_ASSIGN(std::vector<char> sky, NaiveSkylineRows(t, spec));
  EXPECT_EQ(sky.size(), t.schema().row_width());
}

TEST_F(NaiveTest, DiffPartitionsGroups) {
  // Group 1: (1, 10) beats (1, 5). Group 2: (2, 3) alone.
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{1, 10}, {1, 5}, {2, 3}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kDiff}, {"a1", Directive::kMax}}));
  std::vector<char> rows = testing_util::ReadAll(t);
  EXPECT_EQ(NaiveSkylineIndices(spec, rows.data(), 3),
            (std::vector<uint64_t>{0, 2}));
}

TEST_F(NaiveTest, MinDirectiveRespected) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{1, 9}, {2, 5}, {3, 1}}));
  // Maximize a0, minimize a1: (3,1) dominates nothing? (3,1) has best a0
  // AND best a1 -> dominates both others.
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMin}}));
  std::vector<char> rows = testing_util::ReadAll(t);
  EXPECT_EQ(NaiveSkylineIndices(spec, rows.data(), 3),
            (std::vector<uint64_t>{2}));
}

TEST_F(NaiveTest, SchemaMismatchRejected) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{1, 2}}));
  ASSERT_OK_AND_ASSIGN(Table other, MakeIntTable(env_.get(), "o", 3,
                                                 {{1, 2, 3}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(other.schema(), {{"a2", Directive::kMax}}));
  EXPECT_TRUE(NaiveSkylineRows(t, spec).status().IsInvalidArgument());
}

}  // namespace
}  // namespace skyline
