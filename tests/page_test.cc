#include "storage/page.h"

#include <cstring>
#include <string>

#include "gtest/gtest.h"

namespace skyline {
namespace {

TEST(Page, GeometryMatchesPaper) {
  // 100-byte tuples, 4096-byte pages: 40 tuples per page (the paper's
  // layout); 40-byte projected entries: 102 per page (paper says ~100).
  EXPECT_EQ(kPageSize, 4096u);
  EXPECT_EQ(RecordsPerPage(100), 40u);
  EXPECT_EQ(RecordsPerPage(40), 102u);
}

TEST(Page, RecordsPerPageEdgeCases) {
  EXPECT_EQ(RecordsPerPage(1), kPageSize);
  EXPECT_EQ(RecordsPerPage(kPageSize), 1u);
  EXPECT_EQ(RecordsPerPage(kPageSize + 1), 0u);
  EXPECT_EQ(RecordsPerPage(0), 0u);
}

TEST(Page, AppendAndReadBack) {
  Page page(8);
  EXPECT_TRUE(page.empty());
  EXPECT_EQ(page.capacity(), kPageSize / 8);
  const char rec1[8] = {'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'};
  const char rec2[8] = {'1', '2', '3', '4', '5', '6', '7', '8'};
  page.Append(rec1);
  page.Append(rec2);
  EXPECT_EQ(page.size(), 2u);
  EXPECT_EQ(std::memcmp(page.RecordAt(0), rec1, 8), 0);
  EXPECT_EQ(std::memcmp(page.RecordAt(1), rec2, 8), 0);
}

TEST(Page, FillToCapacity) {
  Page page(1024);
  EXPECT_EQ(page.capacity(), 4u);
  std::string rec(1024, 'x');
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(page.full());
    page.Append(rec.data());
  }
  EXPECT_TRUE(page.full());
  EXPECT_EQ(page.payload_bytes(), kPageSize);
}

TEST(Page, ClearResets) {
  Page page(16);
  std::string rec(16, 'y');
  page.Append(rec.data());
  page.Clear();
  EXPECT_TRUE(page.empty());
  EXPECT_EQ(page.payload_bytes(), 0u);
}

TEST(Page, SetSizeAfterExternalFill) {
  Page page(100);
  std::memset(page.mutable_data(), 7, kPageSize);
  page.set_size(40);
  EXPECT_EQ(page.size(), 40u);
  EXPECT_EQ(page.RecordAt(39)[0], 7);
}

TEST(Page, MutableRecordAt) {
  Page page(4);
  const char rec[4] = {0, 0, 0, 0};
  page.Append(rec);
  page.MutableRecordAt(0)[2] = 9;
  EXPECT_EQ(page.RecordAt(0)[2], 9);
}

TEST(PageDeathTest, OverflowChecks) {
  Page page(kPageSize);
  std::string rec(kPageSize, 'z');
  page.Append(rec.data());
  EXPECT_DEATH(page.Append(rec.data()), "page overflow");
}

TEST(PageDeathTest, OutOfBoundsAccessChecks) {
  Page page(8);
  EXPECT_DEATH(page.RecordAt(0), "Check failed");
}

}  // namespace
}  // namespace skyline
