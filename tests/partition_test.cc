#include "core/partition.h"

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/thread_pool.h"
#include "core/run_report.h"
#include "core/sfs.h"
#include "core/sfs_parallel.h"
#include "gtest/gtest.h"
#include "relation/generator.h"
#include "sort/external_sort.h"
#include "storage/heap_file.h"
#include "storage/temp_file_manager.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::ReadAll;

class PartitionTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

SkylineSpec MixedSpec(const Table& t, int dims, bool with_diff) {
  std::vector<Criterion> criteria;
  for (int i = 0; i < dims; ++i) {
    Directive d = (i % 2 == 0) ? Directive::kMax : Directive::kMin;
    if (with_diff && i == 0) d = Directive::kDiff;
    criteria.push_back({"a" + std::to_string(i), d});
  }
  auto result = SkylineSpec::Make(t.schema(), std::move(criteria));
  SKYLINE_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

Result<Table> MakeTable(Env* env, const std::string& name, uint64_t rows,
                        int dims, Distribution dist, uint64_t seed) {
  GeneratorOptions gen;
  gen.num_rows = rows;
  gen.num_attributes = dims;
  gen.payload_bytes = 12;
  gen.distribution = dist;
  gen.seed = seed;
  return GenerateTable(env, name, gen);
}

std::string Presort(Env* env, TempFileManager* temp_files, const Table& t,
                    const SkylineSpec& spec) {
  std::unique_ptr<RowOrdering> ordering = MakeNestedSkylineOrdering(spec);
  auto sorted = SortHeapFile(env, temp_files, t.path(),
                             t.schema().row_width(), *ordering, SortOptions{},
                             ExecContext(),
                             nullptr);
  SKYLINE_CHECK(sorted.ok()) << sorted.status().ToString();
  return std::move(sorted).value();
}

Result<std::vector<char>> RunParallel(Env* env, const std::string& sorted,
                                      const SkylineSpec& spec,
                                      const ParallelSfsOptions& options,
                                      SkylineRunStats* stats = nullptr) {
  std::vector<char> out;
  const size_t width = spec.schema().row_width();
  SKYLINE_RETURN_IF_ERROR(ParallelSfsFilter(
      env, sorted, spec, options,
      [&out, width](const char* row) {
        out.insert(out.end(), row, row + width);
        return Status::OK();
      },
      stats));
  return out;
}

TEST_F(PartitionTest, NamesParseAndRoundTrip) {
  for (PartitionSchemeKind kind :
       {PartitionSchemeKind::kStride, PartitionSchemeKind::kGrid,
        PartitionSchemeKind::kAngular}) {
    ASSERT_OK_AND_ASSIGN(PartitionSchemeKind parsed,
                         ParsePartitionScheme(PartitionSchemeName(kind)));
    EXPECT_EQ(parsed, kind);
  }
  EXPECT_FALSE(ParsePartitionScheme("zigzag").ok());
  EXPECT_FALSE(ParsePartitionScheme("").ok());
}

// Fitting the same scheme twice over the same file must assign every row
// to the same partition (deterministic sampling/boundaries), and every
// assignment must be a valid partition id. Determinism of the fit is what
// makes the merge counters reproducible run to run.
TEST_F(PartitionTest, OwnerAssignmentsDeterministicAndInRange) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeTable(env_.get(), "t", 6000, 4,
                                          Distribution::kAntiCorrelated, 7));
  SkylineSpec spec = MixedSpec(t, 4, /*with_diff=*/false);
  TempFileManager temp_files(env_.get(), "psort");
  const std::string sorted = Presort(env_.get(), &temp_files, t, spec);
  const size_t width = spec.schema().row_width();
  const size_t partitions = 5;

  for (PartitionSchemeKind kind :
       {PartitionSchemeKind::kStride, PartitionSchemeKind::kGrid,
        PartitionSchemeKind::kAngular}) {
    PartitionSchemeOptions popts;
    popts.kind = kind;
    popts.stride_chunk_rows = 64;
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PartitionScheme> a,
        MakePartitionScheme(env_.get(), sorted, spec, partitions, popts));
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PartitionScheme> b,
        MakePartitionScheme(env_.get(), sorted, spec, partitions, popts));
    EXPECT_EQ(a->kind(), kind);
    EXPECT_EQ(a->partitions(), partitions);
    EXPECT_EQ(a->position_based(), kind == PartitionSchemeKind::kStride);

    HeapFileReader reader(env_.get(), sorted, width, nullptr);
    ASSERT_OK(reader.Open());
    std::vector<uint64_t> per_partition(partitions, 0);
    for (uint64_t i = 0; i < reader.record_count(); ++i) {
      const char* row = reader.Next();
      ASSERT_NE(row, nullptr);
      const size_t owner = a->OwnerOf(row, i);
      ASSERT_LT(owner, partitions);
      ASSERT_EQ(owner, b->OwnerOf(row, i)) << PartitionSchemeName(kind)
                                           << " row " << i;
      ++per_partition[owner];
    }
    // Equi-depth fitting should touch every partition on 6k smooth rows.
    for (size_t p = 0; p < partitions; ++p) {
      EXPECT_GT(per_partition[p], 0u) << PartitionSchemeName(kind) << " p=" << p;
    }
  }
}

// The non-negotiable guarantee: every scheme, merge mode, and thread count
// emits byte-for-byte what sequential SFS emits.
TEST_F(PartitionTest, ByteIdenticalAcrossSchemesAndThreadCounts) {
  int config = 0;
  for (Distribution dist :
       {Distribution::kCorrelated, Distribution::kAntiCorrelated}) {
    for (bool with_diff : {false, true}) {
      const std::string tag = "cfg" + std::to_string(config++);
      ASSERT_OK_AND_ASSIGN(
          Table t, MakeTable(env_.get(), "t_" + tag, 4000, 5, dist,
                             400 + config));
      SkylineSpec spec = MixedSpec(t, 5, with_diff);

      SfsOptions seq;
      seq.presort = Presort::kNested;
      ASSERT_OK_AND_ASSIGN(
          Table baseline,
          ComputeSkylineSfs(t, spec, seq, ExecContext(), "seq_" + tag, nullptr));
      const std::vector<char> expected = ReadAll(baseline);

      TempFileManager temp_files(env_.get(), "psort_" + tag);
      const std::string sorted = Presort(env_.get(), &temp_files, t, spec);
      for (PartitionSchemeKind kind :
           {PartitionSchemeKind::kStride, PartitionSchemeKind::kGrid,
            PartitionSchemeKind::kAngular}) {
        for (ParallelMergeMode mode : {ParallelMergeMode::kFilteredCascade,
                                       ParallelMergeMode::kAllPairs}) {
          for (size_t threads : {1u, 4u, 16u}) {
            ParallelSfsOptions popt;
            popt.threads = threads;
            popt.min_block_rows = 1;
            popt.chunk_rows = 97;
            popt.partition = kind;
            popt.merge_mode = mode;
            SkylineRunStats stats;
            ASSERT_OK_AND_ASSIGN(
                std::vector<char> got,
                RunParallel(env_.get(), sorted, spec, popt, &stats));
            ASSERT_EQ(got.size(), expected.size())
                << tag << " " << PartitionSchemeName(kind) << " mode="
                << static_cast<int>(mode) << " threads=" << threads;
            ASSERT_EQ(0, std::memcmp(got.data(), expected.data(), got.size()))
                << tag << " " << PartitionSchemeName(kind) << " mode="
                << static_cast<int>(mode) << " threads=" << threads;
            EXPECT_EQ(stats.threads_used, threads);
            if (threads > 1) {
              EXPECT_STREQ(stats.partition_scheme, PartitionSchemeName(kind));
              EXPECT_EQ(stats.merge_candidates > 0, stats.output_rows > 0);
            }
          }
        }
      }
    }
  }
}

// The CI-friendly simulated-shard harness: on a host of any core count,
// forcing 16 single-threaded "shards" through the filter exercises the
// full multi-partition merge. The filtered cascade plus representative
// pre-prune must cut cross-block dominance tests by at least 5x against
// the measured all-pairs baseline — the acceptance bar the bench records
// at full scale — while emitting identical bytes.
TEST_F(PartitionTest, SimulatedShardCascadeCutsMergeComparisons) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeTable(env_.get(), "t", 30'000, 5,
                                          Distribution::kAntiCorrelated, 11));
  SkylineSpec spec = MixedSpec(t, 5, /*with_diff=*/false);
  TempFileManager temp_files(env_.get(), "psort");
  const std::string sorted = Presort(env_.get(), &temp_files, t, spec);

  ParallelSfsOptions base;
  base.threads = 16;  // simulated shards, deliberately ignoring hardware
  base.min_block_rows = 1;

  ParallelSfsOptions all_pairs = base;
  all_pairs.merge_mode = ParallelMergeMode::kAllPairs;
  SkylineRunStats all_pairs_stats;
  ASSERT_OK_AND_ASSIGN(
      std::vector<char> baseline,
      RunParallel(env_.get(), sorted, spec, all_pairs, &all_pairs_stats));

  // The v2 full stack: angular partitioning (local skylines stay near the
  // global skyline on anti-correlated data, so far fewer candidates reach
  // the merge) + representative pre-prune + filtered cascade. The baseline
  // above is the v1 configuration: stride partitions, all-pairs merge.
  ParallelSfsOptions cascade = base;
  cascade.partition = PartitionSchemeKind::kAngular;
  cascade.merge_mode = ParallelMergeMode::kFilteredCascade;
  cascade.representatives = 16;
  SkylineRunStats cascade_stats;
  ASSERT_OK_AND_ASSIGN(
      std::vector<char> got,
      RunParallel(env_.get(), sorted, spec, cascade, &cascade_stats));

  ASSERT_EQ(got.size(), baseline.size());
  ASSERT_EQ(0, std::memcmp(got.data(), baseline.data(), got.size()));
  EXPECT_EQ(all_pairs_stats.threads_used, 16u);
  EXPECT_EQ(cascade_stats.threads_used, 16u);
  // Angular partitions admit far fewer false candidates than stride.
  EXPECT_LT(cascade_stats.merge_candidates, all_pairs_stats.merge_candidates);
  EXPECT_GT(cascade_stats.representative_prunes, 0u);
  EXPECT_GE(cascade_stats.cascade_levels, 4u);  // 16 lists halve to 1

  ASSERT_GT(all_pairs_stats.merge_comparisons, 0u);
  ASSERT_GT(cascade_stats.merge_comparisons, 0u);
  const double reduction =
      static_cast<double>(all_pairs_stats.merge_comparisons) /
      static_cast<double>(cascade_stats.merge_comparisons);
  EXPECT_GE(reduction, 5.0)
      << "all_pairs=" << all_pairs_stats.merge_comparisons
      << " cascade=" << cascade_stats.merge_comparisons;

  // Determinism of the counters themselves: a re-run reproduces them.
  SkylineRunStats again;
  ASSERT_OK_AND_ASSIGN(std::vector<char> rerun,
                       RunParallel(env_.get(), sorted, spec, cascade, &again));
  EXPECT_EQ(rerun, got);
  EXPECT_EQ(again.merge_comparisons, cascade_stats.merge_comparisons);
  EXPECT_EQ(again.representative_prunes, cascade_stats.representative_prunes);
  EXPECT_EQ(again.merge_blocks_pruned, cascade_stats.merge_blocks_pruned);
}

// Cancellation raised while the merge phase runs must surface promptly as
// kCancelled — and the pool must drain cleanly (the filter returns only
// after its ParallelFor loops complete, so no work leaks past the call).
// The input is sized so no scan worker ever reaches its 4096-row poll:
// the first hook call after entry happens inside the merge.
TEST_F(PartitionTest, CancelDuringMergeReturnsCancelled) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeTable(env_.get(), "t", 8000, 5,
                                          Distribution::kAntiCorrelated, 3));
  SkylineSpec spec = MixedSpec(t, 5, /*with_diff=*/false);
  TempFileManager temp_files(env_.get(), "psort");
  const std::string sorted = Presort(env_.get(), &temp_files, t, spec);

  for (ParallelMergeMode mode : {ParallelMergeMode::kFilteredCascade,
                                 ParallelMergeMode::kAllPairs}) {
    auto calls = std::make_shared<std::atomic<uint64_t>>(0);
    ExecContext ctx;
    ctx.cancelled = [calls]() {
      // Call #1 is the entry check; every later call (the merge polls)
      // reports cancellation.
      return calls->fetch_add(1, std::memory_order_relaxed) >= 1;
    };
    ParallelSfsOptions popt;
    popt.threads = 4;
    popt.min_block_rows = 1;
    popt.merge_mode = mode;
    popt.exec = &ctx;
    size_t emitted = 0;
    const Status st = ParallelSfsFilter(
        env_.get(), sorted, spec, popt,
        [&emitted](const char*) {
          ++emitted;
          return Status::OK();
        },
        nullptr);
    EXPECT_TRUE(st.IsCancelled()) << "mode=" << static_cast<int>(mode) << " "
                                  << st.ToString();
    EXPECT_EQ(emitted, 0u) << "rows emitted after cancellation";
    EXPECT_GE(calls->load(), 2u) << "merge phase never polled the hook";
  }
}

// Degraded-parallelism honesty: an input too small for the requested
// shard count must raise the flag, render the report warning, and record
// the JSON keys the bench consumers read.
TEST_F(PartitionTest, DegradedParallelismIsReported) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeTable(env_.get(), "t", 6000, 4,
                                          Distribution::kIndependent, 5));
  SkylineSpec spec = MixedSpec(t, 4, /*with_diff=*/false);
  TempFileManager temp_files(env_.get(), "psort");
  const std::string sorted = Presort(env_.get(), &temp_files, t, spec);

  ParallelSfsOptions popt;
  popt.threads = 16;
  popt.min_block_rows = 4096;  // 6000 rows -> 1 block despite 16 requested
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(std::vector<char> got,
                       RunParallel(env_.get(), sorted, spec, popt, &stats));
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(stats.threads_requested, 16u);
  EXPECT_EQ(stats.threads_used, 1u);
  EXPECT_TRUE(stats.DegradedParallelism());

  RunReport report;
  report.tool = "test";
  report.stats = stats;
  const std::string text = RenderRunReportText(report);
  EXPECT_NE(text.find("degraded parallelism"), std::string::npos) << text;
  const std::string json = RenderRunReportJson(report);
  EXPECT_NE(json.find("\"degraded_parallelism\": true"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"threads_requested\": 16"), std::string::npos) << json;

  // An honored request must not warn.
  SkylineRunStats honored;
  honored.threads_requested = 2;
  honored.threads_used = 2;
  EXPECT_FALSE(honored.DegradedParallelism());
  RunReport ok_report;
  ok_report.tool = "test";
  ok_report.stats = honored;
  EXPECT_EQ(RenderRunReportText(ok_report).find("degraded parallelism"),
            std::string::npos);
}

}  // namespace
}  // namespace skyline
