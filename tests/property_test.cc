// Property-based tests: algorithm-independent invariants checked over
// parameterized sweeps of dimensions, distributions, window sizes, and
// presort orders.

#include "core/skyline.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

SkylineSpec MaxSpec(const Table& t, int dims) {
  std::vector<Criterion> criteria;
  for (int i = 0; i < dims; ++i) {
    criteria.push_back({"a" + std::to_string(i), Directive::kMax});
  }
  auto result = SkylineSpec::Make(t.schema(), std::move(criteria));
  SKYLINE_CHECK(result.ok());
  return std::move(result).value();
}

// ---------------------------------------------------------------------------
// Sweep 1: SFS equals the oracle for every (dims, window, projection,
// presort) combination.

struct SfsParam {
  int dims;
  size_t window_pages;
  bool projection;
  Presort presort;
};

class SfsPropertyTest : public ::testing::TestWithParam<SfsParam> {};

TEST_P(SfsPropertyTest, MatchesOracle) {
  const SfsParam& p = GetParam();
  auto env = NewMemEnv();
  auto t_result = MakeUniformTable(env.get(), "t", 1200, p.dims, 100 + p.dims);
  ASSERT_TRUE(t_result.ok());
  Table t = std::move(t_result).value();
  SkylineSpec spec = MaxSpec(t, p.dims);
  SfsOptions opts;
  opts.window_pages = p.window_pages;
  opts.use_projection = p.projection;
  opts.presort = p.presort;
  SkylineRunStats stats;
  auto sky_result = ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", &stats);
  ASSERT_TRUE(sky_result.ok()) << sky_result.status().ToString();
  Table sky = std::move(sky_result).value();
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
  // Conservation: output <= input; each pass shrinks the problem.
  EXPECT_LE(stats.output_rows, stats.input_rows);
  EXPECT_LE(stats.spilled_tuples, stats.input_rows * stats.passes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SfsPropertyTest,
    ::testing::Values(
        SfsParam{2, 1, false, Presort::kNested},
        SfsParam{2, 1, true, Presort::kEntropy},
        SfsParam{3, 1, false, Presort::kEntropy},
        SfsParam{3, 2, true, Presort::kNested},
        SfsParam{4, 1, true, Presort::kEntropy},
        SfsParam{4, 500, false, Presort::kNested},
        SfsParam{5, 2, true, Presort::kEntropy},
        SfsParam{5, 500, true, Presort::kNested},
        SfsParam{6, 1, false, Presort::kNested},
        SfsParam{6, 3, true, Presort::kEntropy},
        SfsParam{7, 2, false, Presort::kEntropy},
        SfsParam{7, 500, true, Presort::kEntropy}),
    [](const ::testing::TestParamInfo<SfsParam>& info) {
      const SfsParam& p = info.param;
      return "d" + std::to_string(p.dims) + "_w" +
             std::to_string(p.window_pages) + (p.projection ? "_proj" : "_full") +
             (p.presort == Presort::kNested ? "_nested" : "_entropy");
    });

// ---------------------------------------------------------------------------
// Sweep 2: all four algorithms agree across data distributions.

struct DistParam {
  Distribution distribution;
  int dims;
};

class AlgorithmAgreementTest : public ::testing::TestWithParam<DistParam> {};

TEST_P(AlgorithmAgreementTest, AllAlgorithmsAgree) {
  const DistParam& p = GetParam();
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 900;
  gen.num_attributes = p.dims;
  gen.payload_bytes = 8;
  gen.distribution = p.distribution;
  gen.seed = 200 + p.dims;
  auto t_result = GenerateTable(env.get(), "t", gen);
  ASSERT_TRUE(t_result.ok());
  Table t = std::move(t_result).value();
  SkylineSpec spec = MaxSpec(t, p.dims);
  const size_t w = t.schema().row_width();

  const auto oracle = OracleSkylineMultiset(t, spec);

  auto sfs = ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "sfs", nullptr);
  ASSERT_TRUE(sfs.ok());
  std::vector<char> sfs_rows = ReadAll(*sfs);
  EXPECT_EQ(RowMultiset(sfs_rows.data(), sfs->row_count(), w), oracle);

  BnlOptions bnl_opts;
  bnl_opts.window_pages = 2;  // force multi-pass on anti-correlated data
  auto bnl = ComputeSkylineBnl(t, spec, bnl_opts, ExecContext(), "bnl", nullptr);
  ASSERT_TRUE(bnl.ok());
  std::vector<char> bnl_rows = ReadAll(*bnl);
  EXPECT_EQ(RowMultiset(bnl_rows.data(), bnl->row_count(), w), oracle);

  auto dc = DivideConquerSkylineRows(t, spec);
  ASSERT_TRUE(dc.ok());
  EXPECT_EQ(RowMultiset(dc->data(), dc->size() / w, w), oracle);

  // LESS-style sort-phase elimination.
  LessOptions less_opts;
  less_opts.ef_window_pages = 1;
  auto less = ComputeSkylineLess(t, spec, less_opts, ExecContext(), "less", nullptr);
  ASSERT_TRUE(less.ok());
  std::vector<char> less_rows = ReadAll(*less);
  EXPECT_EQ(RowMultiset(less_rows.data(), less->row_count(), w), oracle);

  // Winnow under attribute-wise dominance.
  auto winnow = ComputeWinnow(
      t,
      [&spec](const RowView& a, const RowView& b) {
        return Dominates(spec, a.data(), b.data());
      },
      WinnowOptions{}, "winnow", nullptr);
  ASSERT_TRUE(winnow.ok());
  std::vector<char> winnow_rows = ReadAll(*winnow);
  EXPECT_EQ(RowMultiset(winnow_rows.data(), winnow->row_count(), w), oracle);

  // The 2-dim special case, when applicable.
  if (p.dims == 2) {
    auto sky2d = ComputeSkyline2D(t, spec, SortOptions{}, ExecContext(), "sky2d", nullptr);
    ASSERT_TRUE(sky2d.ok());
    std::vector<char> rows2d = ReadAll(*sky2d);
    EXPECT_EQ(RowMultiset(rows2d.data(), sky2d->row_count(), w), oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgorithmAgreementTest,
    ::testing::Values(DistParam{Distribution::kIndependent, 2},
                      DistParam{Distribution::kIndependent, 5},
                      DistParam{Distribution::kCorrelated, 3},
                      DistParam{Distribution::kCorrelated, 5},
                      DistParam{Distribution::kAntiCorrelated, 2},
                      DistParam{Distribution::kAntiCorrelated, 4}),
    [](const ::testing::TestParamInfo<DistParam>& info) {
      const char* d =
          info.param.distribution == Distribution::kIndependent ? "indep"
          : info.param.distribution == Distribution::kCorrelated ? "corr"
                                                                 : "anti";
      return std::string(d) + "_d" + std::to_string(info.param.dims);
    });

// ---------------------------------------------------------------------------
// Sweep 3: structural skyline properties on random inputs.

class SkylinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SkylinePropertyTest, SkylineMembersAreMutuallyNonDominating) {
  auto env = NewMemEnv();
  auto t_result = MakeUniformTable(env.get(), "t", 600, 4, GetParam());
  ASSERT_TRUE(t_result.ok());
  Table t = std::move(t_result).value();
  SkylineSpec spec = MaxSpec(t, 4);
  auto sky = ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "out", nullptr);
  ASSERT_TRUE(sky.ok());
  std::vector<char> rows = ReadAll(*sky);
  const size_t w = t.schema().row_width();
  for (uint64_t i = 0; i < sky->row_count(); ++i) {
    for (uint64_t j = 0; j < sky->row_count(); ++j) {
      EXPECT_FALSE(Dominates(spec, rows.data() + i * w, rows.data() + j * w));
    }
  }
}

TEST_P(SkylinePropertyTest, EveryNonSkylineTupleIsDominatedBySkyline) {
  auto env = NewMemEnv();
  auto t_result = MakeUniformTable(env.get(), "t", 500, 3, GetParam() + 1000);
  ASSERT_TRUE(t_result.ok());
  Table t = std::move(t_result).value();
  SkylineSpec spec = MaxSpec(t, 3);
  auto sky = ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "out", nullptr);
  ASSERT_TRUE(sky.ok());
  std::vector<char> sky_rows = ReadAll(*sky);
  std::vector<char> all_rows = ReadAll(t);
  const size_t w = t.schema().row_width();
  const auto sky_set = RowMultiset(sky_rows.data(), sky->row_count(), w);
  for (uint64_t i = 0; i < t.row_count(); ++i) {
    const char* row = all_rows.data() + i * w;
    if (sky_set.count(std::string(row, w))) continue;
    bool dominated = false;
    for (uint64_t j = 0; j < sky->row_count() && !dominated; ++j) {
      dominated = Dominates(spec, sky_rows.data() + j * w, row);
    }
    EXPECT_TRUE(dominated) << "non-skyline tuple " << i
                           << " not dominated by any skyline tuple";
  }
}

TEST_P(SkylinePropertyTest, SkylineIsIdempotent) {
  // skyline(skyline(R)) == skyline(R).
  auto env = NewMemEnv();
  auto t_result = MakeUniformTable(env.get(), "t", 700, 4, GetParam() + 2000);
  ASSERT_TRUE(t_result.ok());
  Table t = std::move(t_result).value();
  SkylineSpec spec = MaxSpec(t, 4);
  auto sky1 = ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "s1", nullptr);
  ASSERT_TRUE(sky1.ok());
  auto sky2 = ComputeSkylineSfs(*sky1, spec, SfsOptions{}, ExecContext(), "s2", nullptr);
  ASSERT_TRUE(sky2.ok());
  const size_t w = t.schema().row_width();
  std::vector<char> r1 = ReadAll(*sky1);
  std::vector<char> r2 = ReadAll(*sky2);
  EXPECT_EQ(RowMultiset(r1.data(), sky1->row_count(), w),
            RowMultiset(r2.data(), sky2->row_count(), w));
}

TEST_P(SkylinePropertyTest, SubSkylineContainment) {
  // skyline over (a0,a1) is contained in skyline over (a0,a1,a2), projected
  // sanity of the paper's algebra note (sub-skylines computable from the
  // larger skyline, not vice versa).
  auto env = NewMemEnv();
  auto t_result = MakeUniformTable(env.get(), "t", 600, 3, GetParam() + 3000);
  ASSERT_TRUE(t_result.ok());
  Table t = std::move(t_result).value();
  SkylineSpec spec2 = MaxSpec(t, 2);
  SkylineSpec spec3 = MaxSpec(t, 3);
  std::vector<char> rows = ReadAll(t);
  auto sky2 = NaiveSkylineIndices(spec2, rows.data(), t.row_count());
  auto sky3 = NaiveSkylineIndices(spec3, rows.data(), t.row_count());
  std::set<uint64_t> sky3_set(sky3.begin(), sky3.end());
  for (uint64_t idx : sky2) {
    EXPECT_TRUE(sky3_set.count(idx))
        << "2-dim skyline tuple " << idx << " missing from 3-dim skyline";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkylinePropertyTest,
                         ::testing::Values(301u, 302u, 303u, 304u, 305u));

// ---------------------------------------------------------------------------
// Sweep 4: window-size monotonicity — more window pages never increase
// passes or spills for SFS.

class WindowMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(WindowMonotonicityTest, MorePagesNeverHurt) {
  auto env = NewMemEnv();
  auto t_result = MakeUniformTable(env.get(), "t", 2500, GetParam(), 400);
  ASSERT_TRUE(t_result.ok());
  Table t = std::move(t_result).value();
  SkylineSpec spec = MaxSpec(t, GetParam());
  uint64_t prev_spills = UINT64_MAX;
  uint64_t prev_passes = UINT64_MAX;
  for (size_t pages : {1u, 2u, 4u, 8u, 32u}) {
    SfsOptions opts;
    opts.window_pages = pages;
    opts.use_projection = false;
    SkylineRunStats stats;
    auto sky = ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", &stats);
    ASSERT_TRUE(sky.ok());
    EXPECT_LE(stats.spilled_tuples, prev_spills) << pages;
    EXPECT_LE(stats.passes, prev_passes) << pages;
    prev_spills = stats.spilled_tuples;
    prev_passes = stats.passes;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, WindowMonotonicityTest,
                         ::testing::Values(5, 6, 7));

}  // namespace
}  // namespace skyline
