#include "exec/query.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeUniformTable;

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    auto result = MakeGoodEatsTable(env_.get(), "g");
    ASSERT_TRUE(result.ok());
    guide_.emplace(std::move(result).value());
  }

  std::unique_ptr<Env> env_;
  std::optional<Table> guide_;
};

TEST_F(QueryTest, PaperFigure4Query) {
  // select * from GoodEats skyline of S max, F max, D max, price min.
  Query query(env_.get(), &*guide_, "q");
  query.SkylineOf({{"S", Directive::kMax},
                   {"F", Directive::kMax},
                   {"D", Directive::kMax},
                   {"price", Directive::kMin}});
  std::set<std::string> names;
  ASSERT_OK(query.Run([&](const RowView& row) {
    names.insert(row.GetString(0));
    return Status::OK();
  }));
  EXPECT_EQ(names, (std::set<std::string>{"Summer Moon", "Zakopane",
                                          "Yamanote", "Fenton & Pickle"}));
}

TEST_F(QueryTest, WhereBeforeSkyline) {
  // Restrict to restaurants under $50 first; skyline within that subset.
  Query query(env_.get(), &*guide_, "q");
  query
      .Where([](const RowView& row) { return row.GetFloat64(4) < 50.0; })
      .SkylineOf({{"S", Directive::kMax},
                  {"F", Directive::kMax},
                  {"D", Directive::kMax},
                  {"price", Directive::kMin}});
  std::set<std::string> names;
  ASSERT_OK(query.Run([&](const RowView& row) {
    names.insert(row.GetString(0));
    return Status::OK();
  }));
  EXPECT_EQ(names,
            (std::set<std::string>{"Summer Moon", "Fenton & Pickle"}));
}

TEST_F(QueryTest, ProjectAfterSkyline) {
  Query query(env_.get(), &*guide_, "q");
  query.SkylineOf({{"S", Directive::kMax}, {"price", Directive::kMin}})
      .Project({"restaurant"});
  int count = 0;
  ASSERT_OK(query.Run([&](const RowView& row) {
    EXPECT_EQ(row.schema().num_columns(), 1u);
    EXPECT_FALSE(row.GetString(0).empty());
    ++count;
    return Status::OK();
  }));
  EXPECT_GT(count, 0);
}

TEST_F(QueryTest, LimitTruncates) {
  Query query(env_.get(), &*guide_, "q");
  query.SkylineOf({{"S", Directive::kMax},
                   {"F", Directive::kMax},
                   {"D", Directive::kMax},
                   {"price", Directive::kMin}})
      .Limit(2);
  int count = 0;
  ASSERT_OK(query.Run([&](const RowView&) {
    ++count;
    return Status::OK();
  }));
  EXPECT_EQ(count, 2);
}

TEST_F(QueryTest, OrderByAfterSkyline) {
  LexicographicOrdering by_price(&guide_->schema(), {{4, false}});
  Query query(env_.get(), &*guide_, "q");
  query.SkylineOf({{"S", Directive::kMax},
                   {"F", Directive::kMax},
                   {"D", Directive::kMax},
                   {"price", Directive::kMin}})
      .OrderBy(&by_price);
  std::vector<double> prices;
  ASSERT_OK(query.Run([&](const RowView& row) {
    prices.push_back(row.GetFloat64(4));
    return Status::OK();
  }));
  ASSERT_EQ(prices.size(), 4u);
  EXPECT_TRUE(std::is_sorted(prices.begin(), prices.end()));
}

TEST_F(QueryTest, BnlAlgorithmViaQuery) {
  Query query(env_.get(), &*guide_, "q");
  query.SkylineOf({{"S", Directive::kMax}, {"F", Directive::kMax}},
                  SkylineAlgorithm::kBnl);
  int count = 0;
  ASSERT_OK(query.Run([&](const RowView&) {
    ++count;
    return Status::OK();
  }));
  EXPECT_GT(count, 0);
}

TEST_F(QueryTest, VisitorErrorPropagates) {
  Query query(env_.get(), &*guide_, "q");
  Status st = query.Run(
      [](const RowView&) { return Status::Internal("visitor failed"); });
  EXPECT_TRUE(st.IsInternal());
}

TEST_F(QueryTest, BuildErrorSurfacesFromSteps) {
  Query query(env_.get(), &*guide_, "q");
  query.Project({"no_such_column"});
  EXPECT_TRUE(query.Build().status().IsNotFound());
}

TEST_F(QueryTest, ChainedSkylinesCompose) {
  // skyline of (a0,a1,a2) then skyline of (a0,a1) — the paper notes
  // sub-skylines are computable from larger skylines.
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env.get(), "t", 1000, 3, 71));
  Query chained(env.get(), &t, "q1");
  chained
      .SkylineOf({{"a0", Directive::kMax},
                  {"a1", Directive::kMax},
                  {"a2", Directive::kMax}})
      .SkylineOf({{"a0", Directive::kMax}, {"a1", Directive::kMax}});
  std::multiset<std::string> chained_rows;
  ASSERT_OK(chained.Run([&](const RowView& row) {
    chained_rows.emplace(row.data(), row.schema().row_width());
    return Status::OK();
  }));

  Query direct(env.get(), &t, "q2");
  direct.SkylineOf({{"a0", Directive::kMax}, {"a1", Directive::kMax}});
  std::multiset<std::string> direct_rows;
  ASSERT_OK(direct.Run([&](const RowView& row) {
    direct_rows.emplace(row.data(), row.schema().row_width());
    return Status::OK();
  }));
  EXPECT_EQ(chained_rows, direct_rows);
}


TEST_F(QueryTest, WinnowByArbitraryPreference) {
  // Prefer cheaper restaurants, but only when the service gap is small
  // (a non-monotone trade-off no skyline spec expresses).
  Query query(env_.get(), &*guide_, "q");
  query.WinnowBy([](const RowView& a, const RowView& b) {
    return a.GetFloat64(4) < b.GetFloat64(4) &&
           a.GetInt32(1) + 3 >= b.GetInt32(1);
  });
  std::set<std::string> names;
  ASSERT_OK(query.Run([&](const RowView& row) {
    names.insert(row.GetString(0));
    return Status::OK();
  }));
  // Fenton & Pickle ($17.50, S16) eliminates Briar Patch BBQ and the
  // Brearton Grill; Summer Moon ($47.50, S21) eliminates Yamanote (S22)
  // and Zakopane (S24, exactly at the +3 boundary). Nothing cheap enough
  // reaches Summer Moon's service range, and nothing beats F&P's price.
  EXPECT_EQ(names,
            (std::set<std::string>{"Fenton & Pickle", "Summer Moon"}));
}

TEST_F(QueryTest, WinnowMatchesSkylineForDominancePreference) {
  auto env = NewMemEnv();
  auto table = MakeUniformTable(env.get(), "t", 600, 3, 72);
  ASSERT_TRUE(table.ok());
  auto spec = SkylineSpec::Make(table->schema(), {{"a0", Directive::kMax},
                                                  {"a1", Directive::kMax},
                                                  {"a2", Directive::kMax}});
  ASSERT_TRUE(spec.ok());
  const SkylineSpec& s = *spec;

  Query winnow_query(env.get(), &*table, "qw");
  winnow_query.WinnowBy([&s](const RowView& a, const RowView& b) {
    return Dominates(s, a.data(), b.data());
  });
  std::multiset<std::string> winnow_rows;
  ASSERT_OK(winnow_query.Run([&](const RowView& row) {
    winnow_rows.emplace(row.data(), row.schema().row_width());
    return Status::OK();
  }));

  Query sky_query(env.get(), &*table, "qs");
  sky_query.SkylineOf({{"a0", Directive::kMax},
                       {"a1", Directive::kMax},
                       {"a2", Directive::kMax}});
  std::multiset<std::string> sky_rows;
  ASSERT_OK(sky_query.Run([&](const RowView& row) {
    sky_rows.emplace(row.data(), row.schema().row_width());
    return Status::OK();
  }));
  EXPECT_EQ(winnow_rows, sky_rows);
}

}  // namespace
}  // namespace skyline
