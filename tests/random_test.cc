#include "common/random.h"

#include <cmath>
#include <cstdint>
#include <set>

#include "gtest/gtest.h"

namespace skyline {
namespace {

TEST(Random, DeterministicForSameSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Random, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Random, SmallSeedsWellMixed) {
  // SplitMix64 seeding: consecutive small seeds must not produce
  // correlated first draws.
  std::set<uint64_t> firsts;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    firsts.insert(Random(seed).Next());
  }
  EXPECT_EQ(firsts.size(), 50u);
}

TEST(Random, UniformInRange) {
  Random rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
  // n == 1 always yields 0.
  EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(Random, UniformCoversRange) {
  Random rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, UniformInt32Bounds) {
  Random rng(17);
  for (int i = 0; i < 1000; ++i) {
    int32_t v = rng.UniformInt32(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Random, UniformInt32DegenerateRange) {
  Random rng(19);
  EXPECT_EQ(rng.UniformInt32(3, 3), 3);
}

TEST(Random, UniformInt32FullRangeHitsBothSigns) {
  Random rng(23);
  bool pos = false, neg = false;
  for (int i = 0; i < 100; ++i) {
    int32_t v = rng.UniformInt32();
    if (v > 0) pos = true;
    if (v < 0) neg = true;
  }
  EXPECT_TRUE(pos);
  EXPECT_TRUE(neg);
}

TEST(Random, UniformDoubleInUnitInterval) {
  Random rng(29);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  // Mean should be near 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, GaussianMoments) {
  Random rng(31);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Random, OneInProbability) {
  Random rng(37);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.OneIn(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.03);
}

TEST(Random, CopyPreservesStream) {
  Random a(41);
  a.Next();
  Random b = a;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace skyline
