#include "relation/row.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

class RowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto result =
        Schema::Make({ColumnDef::Int32("i"), ColumnDef::Int64("l"),
                      ColumnDef::Float64("d"), ColumnDef::FixedString("s", 8)});
    ASSERT_TRUE(result.ok());
    schema_ = std::move(result).value();
  }

  Schema schema_;
};

TEST_F(RowTest, SetAndGetAllTypes) {
  RowBuffer row(&schema_);
  row.SetInt32(0, -42);
  row.SetInt64(1, 1LL << 40);
  row.SetFloat64(2, 3.25);
  row.SetString(3, "hello");
  RowView view = row.View();
  EXPECT_EQ(view.GetInt32(0), -42);
  EXPECT_EQ(view.GetInt64(1), 1LL << 40);
  EXPECT_EQ(view.GetFloat64(2), 3.25);
  EXPECT_EQ(view.GetString(3), "hello");
}

TEST_F(RowTest, FreshBufferIsZeroed) {
  RowBuffer row(&schema_);
  RowView view = row.View();
  EXPECT_EQ(view.GetInt32(0), 0);
  EXPECT_EQ(view.GetInt64(1), 0);
  EXPECT_EQ(view.GetFloat64(2), 0.0);
  EXPECT_EQ(view.GetString(3), "");
}

TEST_F(RowTest, StringTruncatesToDeclaredLength) {
  RowBuffer row(&schema_);
  row.SetString(3, "exactly-eight-plus");
  EXPECT_EQ(row.View().GetString(3), "exactly-");
}

TEST_F(RowTest, StringExactLengthNoTrim) {
  RowBuffer row(&schema_);
  row.SetString(3, "12345678");
  EXPECT_EQ(row.View().GetString(3), "12345678");
}

TEST_F(RowTest, ShorterStringOverwritesLonger) {
  RowBuffer row(&schema_);
  row.SetString(3, "AAAAAAAA");
  row.SetString(3, "b");
  EXPECT_EQ(row.View().GetString(3), "b");
}

TEST_F(RowTest, GetNumericWidens) {
  RowBuffer row(&schema_);
  row.SetInt32(0, 9);
  row.SetFloat64(2, -1.5);
  EXPECT_EQ(row.View().GetNumeric(0), 9.0);
  EXPECT_EQ(row.View().GetNumeric(2), -1.5);
}

TEST_F(RowTest, SetRowCopiesRaw) {
  RowBuffer a(&schema_);
  a.SetInt32(0, 5);
  a.SetString(3, "xyz");
  RowBuffer b(&schema_);
  b.SetRow(a.data());
  EXPECT_EQ(b.View().GetInt32(0), 5);
  EXPECT_EQ(b.View().GetString(3), "xyz");
}

TEST_F(RowTest, SizeMatchesSchemaWidth) {
  RowBuffer row(&schema_);
  EXPECT_EQ(row.size(), schema_.row_width());
}

TEST_F(RowTest, TypeMismatchDies) {
  RowBuffer row(&schema_);
  EXPECT_DEATH(row.SetInt32(1, 0), "type mismatch");
  EXPECT_DEATH(row.View().GetString(0), "type mismatch");
}

}  // namespace
}  // namespace skyline
