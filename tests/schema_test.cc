#include "relation/schema.h"

#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

Schema PaperSchema() {
  // Ten int32 attributes plus a 60-byte payload: the paper's 100-byte tuple.
  std::vector<ColumnDef> cols;
  for (int i = 0; i < 10; ++i) cols.push_back(ColumnDef::Int32("a" + std::to_string(i)));
  cols.push_back(ColumnDef::FixedString("payload", 60));
  auto result = Schema::Make(std::move(cols));
  SKYLINE_CHECK(result.ok());
  return std::move(result).value();
}

TEST(Schema, PaperTupleIs100Bytes) {
  Schema s = PaperSchema();
  EXPECT_EQ(s.row_width(), 100u);
  EXPECT_EQ(s.num_columns(), 11u);
}

TEST(Schema, OffsetsAreSequential) {
  ASSERT_OK_AND_ASSIGN(
      Schema s, Schema::Make({ColumnDef::Int32("i"), ColumnDef::Int64("l"),
                              ColumnDef::Float64("d"),
                              ColumnDef::FixedString("s", 7)}));
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 4u);
  EXPECT_EQ(s.offset(2), 12u);
  EXPECT_EQ(s.offset(3), 20u);
  EXPECT_EQ(s.row_width(), 27u);
  EXPECT_EQ(s.column_width(0), 4u);
  EXPECT_EQ(s.column_width(1), 8u);
  EXPECT_EQ(s.column_width(2), 8u);
  EXPECT_EQ(s.column_width(3), 7u);
}

TEST(Schema, ColumnWidths) {
  EXPECT_EQ(ColumnWidth(ColumnType::kInt32, 0), 4u);
  EXPECT_EQ(ColumnWidth(ColumnType::kInt64, 0), 8u);
  EXPECT_EQ(ColumnWidth(ColumnType::kFloat64, 0), 8u);
  EXPECT_EQ(ColumnWidth(ColumnType::kFixedString, 33), 33u);
}

TEST(Schema, RejectsEmpty) {
  EXPECT_TRUE(Schema::Make({}).status().IsInvalidArgument());
}

TEST(Schema, RejectsDuplicateNames) {
  auto r = Schema::Make({ColumnDef::Int32("x"), ColumnDef::Int32("x")});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(Schema, RejectsEmptyName) {
  EXPECT_TRUE(Schema::Make({ColumnDef::Int32("")}).status().IsInvalidArgument());
}

TEST(Schema, RejectsZeroLengthString) {
  EXPECT_TRUE(Schema::Make({ColumnDef::FixedString("s", 0)})
                  .status()
                  .IsInvalidArgument());
}

TEST(Schema, ColumnIndexLookup) {
  Schema s = PaperSchema();
  ASSERT_OK_AND_ASSIGN(size_t idx, s.ColumnIndex("a3"));
  EXPECT_EQ(idx, 3u);
  EXPECT_TRUE(s.ColumnIndex("nope").status().IsNotFound());
}

TEST(Schema, IsNumeric) {
  Schema s = PaperSchema();
  EXPECT_TRUE(s.IsNumeric(0));
  EXPECT_FALSE(s.IsNumeric(10));
}

TEST(Schema, CompareInt32Column) {
  ASSERT_OK_AND_ASSIGN(Schema s, Schema::Make({ColumnDef::Int32("x")}));
  int32_t a = -5, b = 7;
  char ra[4], rb[4];
  std::memcpy(ra, &a, 4);
  std::memcpy(rb, &b, 4);
  EXPECT_LT(s.CompareColumn(0, ra, rb), 0);
  EXPECT_GT(s.CompareColumn(0, rb, ra), 0);
  EXPECT_EQ(s.CompareColumn(0, ra, ra), 0);
}

TEST(Schema, CompareFloatColumn) {
  ASSERT_OK_AND_ASSIGN(Schema s, Schema::Make({ColumnDef::Float64("x")}));
  double a = 1.5, b = 1.25;
  char ra[8], rb[8];
  std::memcpy(ra, &a, 8);
  std::memcpy(rb, &b, 8);
  EXPECT_GT(s.CompareColumn(0, ra, rb), 0);
}

TEST(Schema, CompareStringColumnIsBytewise) {
  ASSERT_OK_AND_ASSIGN(Schema s, Schema::Make({ColumnDef::FixedString("x", 3)}));
  EXPECT_LT(s.CompareColumn(0, "abc", "abd"), 0);
  EXPECT_EQ(s.CompareColumn(0, "abc", "abc"), 0);
}

TEST(Schema, NumericValueWidening) {
  ASSERT_OK_AND_ASSIGN(
      Schema s, Schema::Make({ColumnDef::Int32("i"), ColumnDef::Int64("l"),
                              ColumnDef::Float64("d")}));
  char row[20];
  int32_t i = -7;
  int64_t l = 1'000'000'000'000LL;
  double d = 2.5;
  std::memcpy(row + s.offset(0), &i, 4);
  std::memcpy(row + s.offset(1), &l, 8);
  std::memcpy(row + s.offset(2), &d, 8);
  EXPECT_EQ(s.NumericValue(0, row), -7.0);
  EXPECT_EQ(s.NumericValue(1, row), 1e12);
  EXPECT_EQ(s.NumericValue(2, row), 2.5);
}

TEST(Schema, EqualsIsStructural) {
  ASSERT_OK_AND_ASSIGN(Schema a, Schema::Make({ColumnDef::Int32("x")}));
  ASSERT_OK_AND_ASSIGN(Schema b, Schema::Make({ColumnDef::Int32("x")}));
  ASSERT_OK_AND_ASSIGN(Schema c, Schema::Make({ColumnDef::Int32("y")}));
  ASSERT_OK_AND_ASSIGN(Schema d, Schema::Make({ColumnDef::Int64("x")}));
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_FALSE(a.Equals(d));
}

TEST(Schema, ToStringDescribesColumns) {
  ASSERT_OK_AND_ASSIGN(
      Schema s,
      Schema::Make({ColumnDef::Int32("n"), ColumnDef::FixedString("p", 5)}));
  EXPECT_EQ(s.ToString(), "(n:int32, p:str[5])");
}

}  // namespace
}  // namespace skyline
