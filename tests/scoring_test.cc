#include "core/scoring.h"

#include <cmath>

#include "core/dominance.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;

class ScoringTest : public ::testing::Test {
 protected:
  void BuildTable(const std::vector<std::vector<int32_t>>& rows) {
    env_ = NewMemEnv();
    auto result = MakeIntTable(env_.get(), "t", 2, rows);
    ASSERT_TRUE(result.ok());
    table_.emplace(std::move(result).value());
  }

  SkylineSpec MakeSpec(std::vector<Criterion> criteria) {
    auto result = SkylineSpec::Make(table_->schema(), std::move(criteria));
    SKYLINE_CHECK(result.ok());
    return std::move(result).value();
  }

  const char* RowPtr(const std::vector<char>& rows, size_t i) {
    return rows.data() + i * table_->schema().row_width();
  }

  std::unique_ptr<Env> env_;
  std::optional<Table> table_;
};

TEST_F(ScoringTest, EntropyNormalization) {
  BuildTable({{0, 0}, {10, 20}, {5, 10}});
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kMax}, {"a1", Directive::kMax}});
  EntropyScorer scorer(&spec, *table_);
  std::vector<char> rows = testing_util::ReadAll(*table_);
  // Worst tuple (0,0): normalized (0,0) -> score ln(1)+ln(1) = 0.
  EXPECT_DOUBLE_EQ(scorer.Score(RowPtr(rows, 0)), 0.0);
  // Best tuple (10,20): normalized (1,1) -> 2 ln 2.
  EXPECT_DOUBLE_EQ(scorer.Score(RowPtr(rows, 1)), 2 * std::log(2.0));
  // Middle (5,10): normalized (.5,.5) -> 2 ln 1.5.
  EXPECT_DOUBLE_EQ(scorer.Score(RowPtr(rows, 2)), 2 * std::log(1.5));
  EXPECT_DOUBLE_EQ(scorer.Normalized(0, RowPtr(rows, 2)), 0.5);
}

TEST_F(ScoringTest, MinCriterionFlipsNormalization) {
  BuildTable({{0, 0}, {10, 0}});
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kMin}, {"a1", Directive::kMax}});
  EntropyScorer scorer(&spec, *table_);
  std::vector<char> rows = testing_util::ReadAll(*table_);
  // For MIN, the smallest value is best: normalized 1.
  EXPECT_DOUBLE_EQ(scorer.Normalized(0, RowPtr(rows, 0)), 1.0);
  EXPECT_DOUBLE_EQ(scorer.Normalized(0, RowPtr(rows, 1)), 0.0);
}

TEST_F(ScoringTest, ConstantColumnScoresZero) {
  BuildTable({{7, 1}, {7, 2}});
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kMax}, {"a1", Directive::kMax}});
  EntropyScorer scorer(&spec, *table_);
  std::vector<char> rows = testing_util::ReadAll(*table_);
  // Constant a0 contributes ln(0+1)=0 to everyone; order decided by a1.
  EXPECT_LT(scorer.Score(RowPtr(rows, 0)), scorer.Score(RowPtr(rows, 1)));
}

TEST_F(ScoringTest, EntropyIsMonotoneWithDominance) {
  // Theorem 6 requires strictly-better tuples to score strictly higher.
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env.get(), "t", 400, 4, 7, 0));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMin},
                                     {"a3", Directive::kMax}}));
  EntropyScorer scorer(&spec, t);
  std::vector<char> rows = testing_util::ReadAll(t);
  const size_t w = t.schema().row_width();
  for (uint64_t i = 0; i < t.row_count(); ++i) {
    for (uint64_t j = 0; j < t.row_count(); ++j) {
      if (Dominates(spec, rows.data() + i * w, rows.data() + j * w)) {
        EXPECT_GT(scorer.Score(rows.data() + i * w),
                  scorer.Score(rows.data() + j * w));
      }
    }
  }
}

TEST_F(ScoringTest, EntropyOrderingIsTopological) {
  // Any entropy-descending order must never place a dominated tuple before
  // its dominator.
  BuildTable({{1, 1}, {9, 9}, {5, 5}, {2, 8}, {8, 2}});
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kMax}, {"a1", Directive::kMax}});
  EntropyOrdering ord(&spec, *table_);
  std::vector<char> rows = testing_util::ReadAll(*table_);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      if (Dominates(spec, RowPtr(rows, i), RowPtr(rows, j))) {
        EXPECT_LT(ord.Compare(RowPtr(rows, i), RowPtr(rows, j)), 0);
      }
    }
  }
}

TEST_F(ScoringTest, EntropyOrderingKeyOnlyWithoutDiff) {
  BuildTable({{1, 1}, {2, 2}});
  SkylineSpec no_diff =
      MakeSpec({{"a0", Directive::kMax}, {"a1", Directive::kMax}});
  EntropyOrdering ord(&no_diff, *table_);
  EXPECT_TRUE(ord.has_key());

  SkylineSpec with_diff =
      MakeSpec({{"a0", Directive::kDiff}, {"a1", Directive::kMax}});
  EntropyOrdering ord2(&with_diff, *table_);
  EXPECT_FALSE(ord2.has_key());
}

TEST_F(ScoringTest, EntropyOrderingGroupsDiffOutermost) {
  BuildTable({{2, 9}, {1, 1}, {2, 1}, {1, 9}});
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kDiff}, {"a1", Directive::kMax}});
  EntropyOrdering ord(&spec, *table_);
  std::vector<char> rows = testing_util::ReadAll(*table_);
  // Group 1 rows sort before group 2 regardless of score.
  EXPECT_LT(ord.Compare(RowPtr(rows, 1), RowPtr(rows, 0)), 0);  // (1,1) < (2,9)
  // Within a group, higher score first.
  EXPECT_LT(ord.Compare(RowPtr(rows, 3), RowPtr(rows, 1)), 0);  // (1,9) < (1,1)
}

TEST_F(ScoringTest, KeyMatchesScore) {
  BuildTable({{3, 4}, {1, 2}});
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kMax}, {"a1", Directive::kMax}});
  EntropyOrdering ord(&spec, *table_);
  EntropyScorer scorer(&spec, *table_);
  std::vector<char> rows = testing_util::ReadAll(*table_);
  EXPECT_DOUBLE_EQ(ord.Key(RowPtr(rows, 0)), scorer.Score(RowPtr(rows, 0)));
}

TEST_F(ScoringTest, LinearScorerWeightsApply) {
  BuildTable({{0, 0}, {10, 0}, {0, 10}});
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kMax}, {"a1", Directive::kMax}});
  std::vector<ColumnStats> stats = {table_->stats(0), table_->stats(1)};
  LinearScorer heavy_first(&spec, stats, {10.0, 1.0});
  std::vector<char> rows = testing_util::ReadAll(*table_);
  EXPECT_GT(heavy_first.Score(RowPtr(rows, 1)),
            heavy_first.Score(RowPtr(rows, 2)));
  LinearScorer heavy_second(&spec, stats, {1.0, 10.0});
  EXPECT_LT(heavy_second.Score(RowPtr(rows, 1)),
            heavy_second.Score(RowPtr(rows, 2)));
}

TEST_F(ScoringTest, Theorem4BalancedTupleNeverWinsLinear) {
  // The paper's proof example: {(4,1), (2,2), (1,4)} — (2,2) is skyline but
  // cannot top any positive linear scoring.
  BuildTable({{4, 1}, {2, 2}, {1, 4}});
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kMax}, {"a1", Directive::kMax}});
  std::vector<ColumnStats> stats = {table_->stats(0), table_->stats(1)};
  std::vector<char> rows = testing_util::ReadAll(*table_);
  Random rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const double w1 = rng.UniformDouble() * 10 + 1e-3;
    const double w2 = rng.UniformDouble() * 10 + 1e-3;
    LinearScorer scorer(&spec, stats, {w1, w2});
    const double balanced = scorer.Score(RowPtr(rows, 1));
    const double best = std::max(scorer.Score(RowPtr(rows, 0)),
                                 scorer.Score(RowPtr(rows, 2)));
    EXPECT_LT(balanced, best) << "w1=" << w1 << " w2=" << w2;
  }
}

TEST_F(ScoringTest, Lemma2LinearWinnerIsInSkyline) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env.get(), "t", 300, 3, 21, 0));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}}));
  std::vector<ColumnStats> stats = {t.stats(0), t.stats(1), t.stats(2)};
  std::vector<char> rows = testing_util::ReadAll(t);
  const size_t w = t.schema().row_width();
  std::vector<uint64_t> sky = NaiveSkylineIndices(spec, rows.data(), t.row_count());
  std::set<uint64_t> sky_set(sky.begin(), sky.end());
  Random rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    LinearScorer scorer(&spec, stats,
                        {rng.UniformDouble() + 0.01, rng.UniformDouble() + 0.01,
                         rng.UniformDouble() + 0.01});
    uint64_t best = 0;
    double best_score = -1e300;
    for (uint64_t i = 0; i < t.row_count(); ++i) {
      const double s = scorer.Score(rows.data() + i * w);
      if (s > best_score) {
        best_score = s;
        best = i;
      }
    }
    EXPECT_TRUE(sky_set.count(best)) << "linear winner not in skyline";
  }
}

TEST_F(ScoringTest, NestedOrderingDirections) {
  BuildTable({{1, 5}, {2, 3}});
  SkylineSpec spec =
      MakeSpec({{"a0", Directive::kMax}, {"a1", Directive::kMin}});
  auto ord = MakeNestedSkylineOrdering(spec);
  ASSERT_EQ(ord->keys().size(), 2u);
  EXPECT_EQ(ord->keys()[0].column, 0u);
  EXPECT_TRUE(ord->keys()[0].descending);   // MAX -> descending
  EXPECT_EQ(ord->keys()[1].column, 1u);
  EXPECT_FALSE(ord->keys()[1].descending);  // MIN -> ascending
}

TEST_F(ScoringTest, NestedOrderingDiffOutermost) {
  BuildTable({{1, 5}, {2, 3}});
  SkylineSpec spec =
      MakeSpec({{"a1", Directive::kMax}, {"a0", Directive::kDiff}});
  auto ord = MakeNestedSkylineOrdering(spec);
  ASSERT_EQ(ord->keys().size(), 2u);
  EXPECT_EQ(ord->keys()[0].column, 0u);  // diff column first
  EXPECT_FALSE(ord->keys()[0].descending);
  EXPECT_EQ(ord->keys()[1].column, 1u);
}

}  // namespace
}  // namespace skyline
