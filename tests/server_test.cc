#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "common/json_reader.h"
#include "common/json_writer.h"
#include "gtest/gtest.h"
#include "server/protocol.h"
#include "test_util.h"

namespace skyline {
namespace {

// End-to-end over a real loopback socket and an ephemeral port: framing,
// query/ping/stats ops, cached responses byte-identical across requests,
// writes through the maintenance path, admission control, per-query
// deadlines, and shutdown.

/// One client connection: frames requests out, frames responses in.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends `request` and returns the raw response payload.
  Result<std::string> Call(const std::string& request) {
    if (fd_ < 0) return Status::IoError("client is not connected");
    SKYLINE_RETURN_IF_ERROR(WriteFrame(fd_, request));
    std::string payload;
    SKYLINE_RETURN_IF_ERROR(ReadFrame(fd_, &payload));
    return payload;
  }

  /// Sends a query op and returns the raw response payload.
  Result<std::string> Query(const std::string& sql, long timeout_ms = -1,
                            bool include_report = false) {
    JsonWriter request;
    request.BeginObject();
    request.KeyValue("op", "query");
    request.KeyValue("sql", sql);
    if (timeout_ms >= 0) {
      request.KeyValue("timeout_ms", static_cast<int64_t>(timeout_ms));
    }
    request.KeyValue("include_report", include_report);
    request.EndObject();
    return Call(request.str());
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// Parses a response and returns its "ok" verdict.
bool ResponseOk(const std::string& payload) {
  auto parsed = ParseJson(payload);
  return parsed.ok() && parsed.value().GetBool("ok", false);
}

std::string ErrorCode(const std::string& payload) {
  auto parsed = ParseJson(payload);
  if (!parsed.ok()) return "<unparseable>";
  const JsonValue* error = parsed.value().Find("error");
  if (error == nullptr) return "<no-error-member>";
  return error->GetString("code", "<no-code>");
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    Engine::Options options;
    options.env = env_.get();
    options.write_sidecars = false;
    engine_ = std::make_unique<Engine>(options);
    ASSERT_OK(engine_->CreateTableFromCsv("T",
                                          "a,b,c\n"
                                          "5,1,10\n"
                                          "1,5,20\n"
                                          "3,3,30\n"
                                          "2,2,40\n"));
  }

  /// Starts a server on an ephemeral port with `mutate` applied to the
  /// default options first.
  void StartServer(
      const std::function<void(SkylineServer::Options*)>& mutate = nullptr) {
    SkylineServer::Options options;
    options.engine = engine_.get();
    options.port = 0;
    if (mutate) mutate(&options);
    server_ = std::make_unique<SkylineServer>(options);
    ASSERT_OK(server_->Start());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<SkylineServer> server_;
};

const char kQuery[] = "SELECT * FROM T SKYLINE OF a MAX, b MAX";

TEST_F(ServerTest, PingStatsAndUnknownOp) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_OK_AND_ASSIGN(std::string pong, client.Call(R"({"op": "ping"})"));
  EXPECT_TRUE(ResponseOk(pong));

  ASSERT_OK_AND_ASSIGN(std::string stats, client.Call(R"({"op": "stats"})"));
  ASSERT_TRUE(ResponseOk(stats));
  ASSERT_OK_AND_ASSIGN(JsonValue doc, ParseJson(stats));
  ASSERT_NE(doc.Find("server"), nullptr);
  ASSERT_NE(doc.Find("cache"), nullptr);
  EXPECT_GE(doc.Find("server")->GetNumber("connections_accepted", -1), 1.0);

  ASSERT_OK_AND_ASSIGN(std::string bad, client.Call(R"({"op": "dance"})"));
  EXPECT_FALSE(ResponseOk(bad));
  EXPECT_EQ(ErrorCode(bad), "InvalidArgument");
}

TEST_F(ServerTest, MalformedFramesReportErrors) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_OK_AND_ASSIGN(std::string not_json, client.Call("{{{"));
  EXPECT_FALSE(ResponseOk(not_json));
  ASSERT_OK_AND_ASSIGN(std::string no_sql, client.Call(R"({"op": "query"})"));
  EXPECT_FALSE(ResponseOk(no_sql));
  ASSERT_OK_AND_ASSIGN(std::string bad_sql, client.Query("SELECT FROM"));
  EXPECT_FALSE(ResponseOk(bad_sql));
  EXPECT_EQ(ErrorCode(bad_sql), "InvalidArgument");
  // The connection survives every error above.
  ASSERT_OK_AND_ASSIGN(std::string pong, client.Call(R"({"op": "ping"})"));
  EXPECT_TRUE(ResponseOk(pong));
}

TEST_F(ServerTest, CachedResponsesAreByteIdentical) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_OK_AND_ASSIGN(std::string cold, client.Query(kQuery));
  ASSERT_TRUE(ResponseOk(cold));
  // Hit after miss, same connection and a fresh one: all byte-identical
  // (the report is excluded — it carries wall times).
  ASSERT_OK_AND_ASSIGN(std::string warm, client.Query(kQuery));
  EXPECT_EQ(warm, cold);
  TestClient other(server_->port());
  ASSERT_OK_AND_ASSIGN(std::string cross, other.Query(kQuery));
  EXPECT_EQ(cross, cold);
  const Engine::CacheCounters counters = engine_->cache_counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, 2u);
}

TEST_F(ServerTest, ReportCarriesCacheAndAdmissionCounters) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_OK_AND_ASSIGN(std::string ignored, client.Query(kQuery));
  ASSERT_OK_AND_ASSIGN(std::string payload,
                       client.Query(kQuery, /*timeout_ms=*/-1,
                                    /*include_report=*/true));
  ASSERT_TRUE(ResponseOk(payload));
  ASSERT_OK_AND_ASSIGN(JsonValue doc, ParseJson(payload));
  const JsonValue* report = doc.Find("report");
  ASSERT_NE(report, nullptr);
  const JsonValue* labels = report->Find("labels");
  ASSERT_NE(labels, nullptr);
  EXPECT_EQ(labels->GetString("result_cache", ""), "hit");
  const JsonValue* numbers = report->Find("numbers");
  ASSERT_NE(numbers, nullptr);
  EXPECT_EQ(numbers->GetNumber("cache_hits", -1), 1.0);
  EXPECT_EQ(numbers->GetNumber("cache_misses", -1), 1.0);
  EXPECT_EQ(numbers->GetNumber("admission_rejected", -1), 0.0);
}

TEST_F(ServerTest, WritesFlowThroughMaintenance) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_OK_AND_ASSIGN(std::string before, client.Query(kQuery));

  ASSERT_OK_AND_ASSIGN(std::string write,
                       client.Query("INSERT INTO T VALUES (9, 9, 99)"));
  ASSERT_TRUE(ResponseOk(write));
  ASSERT_OK_AND_ASSIGN(JsonValue doc, ParseJson(write));
  EXPECT_EQ(doc.GetNumber("rows_affected", -1), 1.0);
  EXPECT_EQ(doc.GetNumber("table_version", -1), 2.0);

  // The patched cache serves the post-insert skyline: only (9,9,99).
  ASSERT_OK_AND_ASSIGN(std::string after, client.Query(kQuery));
  EXPECT_NE(after, before);
  ASSERT_OK_AND_ASSIGN(JsonValue after_doc, ParseJson(after));
  EXPECT_EQ(after_doc.GetNumber("rows_emitted", -1), 1.0);
  EXPECT_EQ(engine_->cache_counters().patched, 1u);

  ASSERT_OK_AND_ASSIGN(std::string del,
                       client.Query("DELETE FROM T WHERE c = 99"));
  ASSERT_TRUE(ResponseOk(del));
  ASSERT_OK_AND_ASSIGN(std::string restored, client.Query(kQuery));
  // Byte-identical to the original response: the repair recomputed the
  // same skyline at version 3 and canonical order is stats-independent.
  EXPECT_EQ(restored, before);
}

TEST_F(ServerTest, TimeoutZeroCancelsDeterministically) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_OK_AND_ASSIGN(std::string payload,
                       client.Query(kQuery, /*timeout_ms=*/0));
  EXPECT_FALSE(ResponseOk(payload));
  EXPECT_EQ(ErrorCode(payload), "Cancelled");
  EXPECT_EQ(server_->counters().queries_timed_out, 1u);
  // The slot was released: the next query runs fine.
  ASSERT_OK_AND_ASSIGN(std::string good, client.Query(kQuery));
  EXPECT_TRUE(ResponseOk(good));
}

TEST_F(ServerTest, AdmissionControlRejectsWhenSaturated) {
  // Zero slots: every query bounces immediately — deterministic stand-in
  // for "all slots busy" (same code path, no timing dependence).
  StartServer([](SkylineServer::Options* options) {
    options->max_concurrent_queries = 0;
  });
  TestClient client(server_->port());
  ASSERT_OK_AND_ASSIGN(std::string payload, client.Query(kQuery));
  EXPECT_FALSE(ResponseOk(payload));
  EXPECT_EQ(ErrorCode(payload), "ResourceExhausted");
  EXPECT_EQ(server_->counters().admission_rejected, 1u);
  // Non-query ops are not admission-controlled.
  ASSERT_OK_AND_ASSIGN(std::string pong, client.Call(R"({"op": "ping"})"));
  EXPECT_TRUE(ResponseOk(pong));
}

TEST_F(ServerTest, ConnectionLimitRejectsExtraClients) {
  StartServer([](SkylineServer::Options* options) {
    options->max_connections = 1;
  });
  TestClient first(server_->port());
  ASSERT_OK_AND_ASSIGN(std::string pong, first.Call(R"({"op": "ping"})"));
  ASSERT_TRUE(ResponseOk(pong));
  // The second connection is told the server is full and closed.
  TestClient second(server_->port());
  std::string payload;
  Status status = ReadFrame(second.fd(), &payload);
  ASSERT_OK(status);
  EXPECT_FALSE(ResponseOk(payload));
  EXPECT_EQ(ErrorCode(payload), "ResourceExhausted");
  EXPECT_GE(server_->counters().connections_rejected, 1u);
}

TEST_F(ServerTest, ShutdownOpGatedByOption) {
  StartServer();  // allow_remote_shutdown defaults to false
  {
    TestClient client(server_->port());
    ASSERT_OK_AND_ASSIGN(std::string denied,
                         client.Call(R"({"op": "shutdown"})"));
    EXPECT_FALSE(ResponseOk(denied));
    EXPECT_FALSE(server_->shutdown_requested());
  }
  server_->Stop();

  StartServer([](SkylineServer::Options* options) {
    options->allow_remote_shutdown = true;
  });
  TestClient client(server_->port());
  ASSERT_OK_AND_ASSIGN(std::string granted,
                       client.Call(R"({"op": "shutdown"})"));
  EXPECT_TRUE(ResponseOk(granted));
  EXPECT_TRUE(server_->shutdown_requested());
  server_->Stop();
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, ConcurrentClientsMixedReadWrite) {
  StartServer([](SkylineServer::Options* options) {
    options->max_concurrent_queries = 8;
    options->max_connections = 32;
  });
  constexpr int kClients = 6;
  constexpr int kQueriesPerClient = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      TestClient client(server_->port());
      for (int q = 0; q < kQueriesPerClient; ++q) {
        std::string sql = kQuery;
        if (c == 0 && q % 2 == 1) {
          // One writer thread interleaves inserts of dominated rows: the
          // cached skyline is patched (unchanged) every time.
          sql = "INSERT INTO T VALUES (1, 1, " + std::to_string(100 + q) +
                ")";
        }
        auto payload = client.Query(sql);
        if (!payload.ok() || !ResponseOk(payload.value())) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const SkylineServer::Counters counters = server_->counters();
  EXPECT_EQ(counters.queries_started, counters.queries_ok);
  EXPECT_EQ(counters.queries_error, 0u);
  // Every read after the first served the (possibly patched) cache entry.
  EXPECT_GT(engine_->cache_counters().hits, 0u);

  // Correctness after the dust settles: the skyline is still the original
  // three maxima (every insert was dominated).
  TestClient client(server_->port());
  ASSERT_OK_AND_ASSIGN(std::string payload, client.Query(kQuery));
  ASSERT_OK_AND_ASSIGN(JsonValue doc, ParseJson(payload));
  EXPECT_EQ(doc.GetNumber("rows_emitted", -1), 3.0);
}

}  // namespace
}  // namespace skyline
