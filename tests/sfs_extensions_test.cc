// Tests for the SFS extensions beyond the core algorithm: custom
// preference orderings (paper Section 4.4 "SFS can be combined with any
// preference ordering") and their interaction with pipelined top-N.

#include "core/sfs.h"

#include "core/scoring.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

class CustomOrderingTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

/// A monotone "user preference": weighted linear score, descending.
class WeightedPreference : public RowOrdering {
 public:
  WeightedPreference(const SkylineSpec* spec, std::vector<ColumnStats> stats,
                     std::vector<double> weights)
      : scorer_(spec, std::move(stats), std::move(weights)) {}

  int Compare(const char* a, const char* b) const override {
    const double ka = scorer_.Score(a);
    const double kb = scorer_.Score(b);
    if (ka > kb) return -1;
    if (kb > ka) return 1;
    return 0;
  }
  bool has_key() const override { return true; }
  double Key(const char* row) const override { return scorer_.Score(row); }

 private:
  LinearScorer scorer_;
};

std::vector<ColumnStats> StatsOf(const Table& t) {
  std::vector<ColumnStats> stats;
  for (size_t c = 0; c < t.schema().num_columns(); ++c)
    stats.push_back(t.stats(c));
  return stats;
}

TEST_F(CustomOrderingTest, MatchesOracle) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 1500, 3, 210));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}}));
  WeightedPreference pref(&spec, StatsOf(t), {5.0, 1.0, 0.5});
  SfsOptions opts;
  opts.presort = Presort::kCustom;
  opts.custom_ordering = &pref;
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky, ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", &stats));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
}

TEST_F(CustomOrderingTest, OutputInPreferenceOrder) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 1000, 3, 211));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}}));
  WeightedPreference pref(&spec, StatsOf(t), {1.0, 10.0, 1.0});
  SfsOptions opts;
  opts.presort = Presort::kCustom;
  opts.custom_ordering = &pref;
  ASSERT_OK_AND_ASSIGN(Table sky, ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", nullptr));
  // Skyline rows come out best-preference-first: keys non-increasing.
  std::vector<char> rows = ReadAll(sky);
  const size_t w = t.schema().row_width();
  for (uint64_t i = 1; i < sky.row_count(); ++i) {
    EXPECT_GE(pref.Key(rows.data() + (i - 1) * w),
              pref.Key(rows.data() + i * w));
  }
  // And the very first output is the global preference winner (Lemma 2:
  // a linear-scoring winner is in the skyline).
  std::vector<char> all = ReadAll(t);
  double best = -1e300;
  for (uint64_t i = 0; i < t.row_count(); ++i) {
    best = std::max(best, pref.Key(all.data() + i * w));
  }
  EXPECT_DOUBLE_EQ(pref.Key(rows.data()), best);
}

TEST_F(CustomOrderingTest, MissingOrderingRejected) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{1, 2}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  SfsOptions opts;
  opts.presort = Presort::kCustom;
  EXPECT_TRUE(ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CustomOrderingTest, NonMonotoneOrderingDetected) {
  // A non-monotone "preference" (ascending quality) must be caught by the
  // window's sort-violation check, not produce wrong answers.
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{1, 1}, {2, 2}, {3, 3}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  LexicographicOrdering ascending(&t.schema(), {{0, false}});
  SfsOptions opts;
  opts.presort = Presort::kCustom;
  opts.custom_ordering = &ascending;
  auto result = ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(CustomOrderingTest, DifferentWeightsSameSkylineDifferentOrder) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 800, 2, 212));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  WeightedPreference first_heavy(&spec, StatsOf(t), {10.0, 1.0});
  WeightedPreference second_heavy(&spec, StatsOf(t), {1.0, 10.0});
  const size_t w = t.schema().row_width();
  std::vector<std::string> order_a, order_b;
  for (auto* pref : {&first_heavy, &second_heavy}) {
    SfsOptions opts;
    opts.presort = Presort::kCustom;
    opts.custom_ordering = pref;
    ASSERT_OK_AND_ASSIGN(
        Table sky,
        ComputeSkylineSfs(t, spec, opts,
                          ExecContext(),
                          pref == &first_heavy ? "o1" : "o2", nullptr));
    std::vector<char> rows = ReadAll(sky);
    auto& order = pref == &first_heavy ? order_a : order_b;
    for (uint64_t i = 0; i < sky.row_count(); ++i) {
      order.emplace_back(rows.data() + i * w, w);
    }
  }
  // Same set...
  std::multiset<std::string> set_a(order_a.begin(), order_a.end());
  std::multiset<std::string> set_b(order_b.begin(), order_b.end());
  EXPECT_EQ(set_a, set_b);
  // ...different leading element (unless the skyline is tiny).
  if (order_a.size() > 3) {
    EXPECT_NE(order_a.front(), order_b.front());
  }
}

}  // namespace
}  // namespace skyline
