#include "core/sfs_parallel.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/scoring.h"
#include "core/sfs.h"
#include "gtest/gtest.h"
#include "relation/generator.h"
#include "sql/executor.h"
#include "storage/temp_file_manager.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

class SfsParallelTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

/// Criteria over a0..a{dims-1}: alternating MAX/MIN, optionally with a0
/// turned into a DIFF partition column.
SkylineSpec MixedSpec(const Table& t, int dims, bool with_diff) {
  std::vector<Criterion> criteria;
  for (int i = 0; i < dims; ++i) {
    Directive d = (i % 2 == 0) ? Directive::kMax : Directive::kMin;
    if (with_diff && i == 0) d = Directive::kDiff;
    criteria.push_back({"a" + std::to_string(i), d});
  }
  auto result = SkylineSpec::Make(t.schema(), std::move(criteria));
  SKYLINE_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Presorts `t` with the nested skyline ordering (the deterministic order
/// both the sequential baseline and the parallel runs share) and returns
/// the sorted file's path.
std::string Presort(Env* env, TempFileManager* temp_files, const Table& t,
                    const SkylineSpec& spec) {
  std::unique_ptr<RowOrdering> ordering = MakeNestedSkylineOrdering(spec);
  auto sorted = SortHeapFile(env, temp_files, t.path(),
                             t.schema().row_width(), *ordering, SortOptions{},
                             ExecContext(),
                             nullptr);
  SKYLINE_CHECK(sorted.ok()) << sorted.status().ToString();
  return std::move(sorted).value();
}

/// Runs the block-parallel filter and returns the concatenated output rows.
Result<std::vector<char>> RunParallel(Env* env, const std::string& sorted,
                                      const SkylineSpec& spec,
                                      const ParallelSfsOptions& options,
                                      SkylineRunStats* stats = nullptr) {
  std::vector<char> out;
  const size_t width = spec.schema().row_width();
  SKYLINE_RETURN_IF_ERROR(ParallelSfsFilter(
      env, sorted, spec, options,
      [&out, width](const char* row) {
        out.insert(out.end(), row, row + width);
        return Status::OK();
      },
      stats));
  return out;
}

// The core determinism guarantee: for every thread count, block-parallel
// SFS emits byte-for-byte the rows sequential SFS emits, across
// dimensionalities, correlated/anti-correlated data, and DIFF + MIN/MAX
// spec mixes.
TEST_F(SfsParallelTest, ByteIdenticalToSequentialAcrossThreadCounts) {
  int config = 0;
  for (int dims : {2, 5, 7}) {
    for (Distribution dist :
         {Distribution::kCorrelated, Distribution::kAntiCorrelated}) {
      for (bool with_diff : {false, true}) {
        GeneratorOptions gen;
        gen.num_rows = 3000;
        gen.num_attributes = dims;
        gen.payload_bytes = 12;
        gen.distribution = dist;
        gen.seed = 100 + config;
        // Small domains give the DIFF column a handful of real groups and
        // force heavy tie-breaking in the sort order.
        gen.small_domain = with_diff;
        const std::string tag = "cfg" + std::to_string(config);
        ASSERT_OK_AND_ASSIGN(Table t,
                             GenerateTable(env_.get(), "t_" + tag, gen));
        SkylineSpec spec = MixedSpec(t, dims, with_diff);

        SfsOptions seq;
        seq.presort = Presort::kNested;
        seq.use_projection = (config % 2 == 0);  // cover both window modes
        ASSERT_OK_AND_ASSIGN(
            Table baseline,
            ComputeSkylineSfs(t, spec, seq, ExecContext(), "seq_" + tag, nullptr));
        const std::vector<char> expected = ReadAll(baseline);

        TempFileManager temp_files(env_.get(), "psort_" + tag);
        const std::string sorted = Presort(env_.get(), &temp_files, t, spec);
        for (size_t threads : {1u, 2u, 4u, 8u}) {
          ParallelSfsOptions popt;
          popt.use_projection = seq.use_projection;
          popt.threads = threads;
          popt.min_block_rows = 1;  // force one block per worker
          popt.chunk_rows = 97;     // fine, unaligned stride chunks
          SkylineRunStats stats;
          ASSERT_OK_AND_ASSIGN(
              std::vector<char> got,
              RunParallel(env_.get(), sorted, spec, popt, &stats));
          ASSERT_EQ(got.size(), expected.size())
              << "dims=" << dims << " dist=" << static_cast<int>(dist)
              << " diff=" << with_diff << " threads=" << threads;
          ASSERT_TRUE(std::memcmp(got.data(), expected.data(), got.size()) ==
                      0)
              << "dims=" << dims << " dist=" << static_cast<int>(dist)
              << " diff=" << with_diff << " threads=" << threads;
          EXPECT_EQ(stats.output_rows, baseline.row_count());
          EXPECT_EQ(stats.threads_used, threads);
        }
        ++config;
      }
    }
  }
}

// Tiny per-worker windows force the in-memory multi-pass fallback inside
// each block; the result must still be the exact skyline (order-insensitive
// check against the sequential filter, which emits pass-major order).
TEST_F(SfsParallelTest, TinyWindowMultiPassMatchesSequential) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 4000, 7, 9));
  SkylineSpec spec = MixedSpec(t, 7, /*with_diff=*/false);

  SfsOptions seq;
  seq.presort = Presort::kNested;
  seq.window_pages = 1;
  seq.use_projection = false;
  SkylineRunStats seq_stats;
  ASSERT_OK_AND_ASSIGN(Table baseline,
                       ComputeSkylineSfs(t, spec, seq, ExecContext(), "seq", &seq_stats));
  ASSERT_GT(seq_stats.passes, 1u) << "window too large to exercise spilling";
  std::vector<char> expected_rows = ReadAll(baseline);

  TempFileManager temp_files(env_.get(), "psort");
  const std::string sorted = Presort(env_.get(), &temp_files, t, spec);
  ParallelSfsOptions popt;
  popt.window_pages = 1;
  popt.use_projection = false;
  popt.threads = 4;
  popt.min_block_rows = 1;
  popt.chunk_rows = 64;
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(std::vector<char> got,
                       RunParallel(env_.get(), sorted, spec, popt, &stats));
  const size_t width = spec.schema().row_width();
  EXPECT_GT(stats.passes, 1u);
  EXPECT_EQ(RowMultiset(got.data(), got.size() / width, width),
            RowMultiset(expected_rows.data(), baseline.row_count(), width));
}

// End-to-end through the public SfsOptions::threads knob (table large
// enough that min_block_rows still yields multiple blocks) — output must
// equal the sequential computation byte for byte, and match the oracle.
TEST_F(SfsParallelTest, ComputeSkylineSfsThreadsKnob) {
  ASSERT_OK_AND_ASSIGN(Table t,
                       MakeUniformTable(env_.get(), "t", 10'000, 5, 11));
  SkylineSpec spec = MixedSpec(t, 5, /*with_diff=*/false);
  ASSERT_OK_AND_ASSIGN(
      Table baseline, ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "seq", nullptr));
  const std::vector<char> expected = ReadAll(baseline);

  SfsOptions par;
  par.threads = 4;
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineSfs(t, spec, par, ExecContext(), "par", &stats));
  std::vector<char> got = ReadAll(sky);
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_TRUE(std::memcmp(got.data(), expected.data(), got.size()) == 0);
  // The knob is clamped to the hardware: on a multi-core host the parallel
  // filter runs (10k rows / 4096 min block = 2 blocks) and the knob reaches
  // the sorter; a 1-core host falls back to the sequential filter entirely.
  const size_t clamped = ClampThreadsToHardware(par.threads);
  if (clamped > 1) {
    EXPECT_EQ(stats.threads_used, 2u);
    EXPECT_GT(stats.sort_stats.threads_used, 1u);
  } else {
    EXPECT_EQ(stats.threads_used, 1u);
    EXPECT_EQ(stats.sort_stats.threads_used, 1u);
  }
  EXPECT_EQ(RowMultiset(got.data(), sky.row_count(),
                        spec.schema().row_width()),
            OracleSkylineMultiset(t, spec));
}

// The SQL session knob overrides per-query options and must not change
// results.
TEST_F(SfsParallelTest, SqlThreadsKnobMatchesSequential) {
  ASSERT_OK_AND_ASSIGN(Table t,
                       MakeUniformTable(env_.get(), "t", 9000, 4, 13));
  Catalog catalog(env_.get());
  catalog.Register("T", &t);
  const std::string sql =
      "SELECT * FROM T SKYLINE OF a0 MAX, a1 MIN, a2 MAX, a3 MIN";

  auto collect = [&](size_t threads, std::vector<std::string>* rows) {
    SqlOptions options;
    options.exec.threads = threads;
    options.temp_prefix = "sqlq_" + std::to_string(threads);
    return ExecuteSql(catalog, sql, options,
                      [rows](const RowView& row) {
                        rows->emplace_back(row.data(),
                                           row.schema().row_width());
                        return Status::OK();
                      });
  };
  std::vector<std::string> sequential, parallel;
  ASSERT_OK(collect(1, &sequential));
  ASSERT_OK(collect(4, &parallel));
  EXPECT_EQ(parallel, sequential);
  EXPECT_FALSE(sequential.empty());
}

}  // namespace
}  // namespace skyline
