#include "core/sfs.h"

#include "core/naive.h"
#include "core/scoring.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

class SfsTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

SkylineSpec MaxSpec(const Table& t, int dims) {
  std::vector<Criterion> criteria;
  for (int i = 0; i < dims; ++i) {
    criteria.push_back({"a" + std::to_string(i), Directive::kMax});
  }
  auto result = SkylineSpec::Make(t.schema(), std::move(criteria));
  SKYLINE_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST_F(SfsTest, MatchesOracleOnRandomData) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 2000, 4, 1));
  SkylineSpec spec = MaxSpec(t, 4);
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "out", &stats));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
  EXPECT_EQ(stats.input_rows, 2000u);
  EXPECT_EQ(stats.output_rows, sky.row_count());
  EXPECT_EQ(stats.passes, 1u);  // default window holds everything
  EXPECT_EQ(stats.ExtraPages(), 0u);
}

TEST_F(SfsTest, AllVariantsAgree) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 1500, 5, 2));
  SkylineSpec spec = MaxSpec(t, 5);
  const auto oracle = OracleSkylineMultiset(t, spec);
  int run = 0;
  for (Presort presort : {Presort::kNested, Presort::kEntropy}) {
    for (bool projection : {false, true}) {
      SfsOptions opts;
      opts.presort = presort;
      opts.use_projection = projection;
      ASSERT_OK_AND_ASSIGN(
          Table sky, ComputeSkylineSfs(t, spec, opts,
                                       ExecContext(),
                                       "out" + std::to_string(run++), nullptr));
      std::vector<char> rows = ReadAll(sky);
      EXPECT_EQ(
          RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
          oracle)
          << "presort=" << static_cast<int>(presort) << " proj=" << projection;
    }
  }
}

TEST_F(SfsTest, MultiPassWithTinyWindowMatchesOracle) {
  // 7 dims => big skyline; a 1-page window forces several passes.
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 3000, 7, 3));
  SkylineSpec spec = MaxSpec(t, 7);
  SfsOptions opts;
  opts.window_pages = 1;
  opts.use_projection = false;
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", &stats));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
  EXPECT_GT(stats.passes, 1u);
  EXPECT_GT(stats.spilled_tuples, 0u);
  EXPECT_GT(stats.ExtraPages(), 0u);
  // Every spilled page is written once and read once.
  EXPECT_EQ(stats.temp_io.pages_read, stats.temp_io.pages_written);
}

TEST_F(SfsTest, PerPassTraceSpansMatchPassCount) {
  // Same shape as the tiny-window test above: several filter passes, each
  // of which must emit exactly one "filter-pass-<n>" span.
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 3000, 7, 3));
  SkylineSpec spec = MaxSpec(t, 7);
  SfsOptions opts;
  opts.window_pages = 1;
  opts.use_projection = false;
  opts.threads = 1;
  TraceSink trace;
  ExecContext ctx;
  ctx.trace = &trace;
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineSfs(t, spec, opts, ctx, "out", &stats));
  ASSERT_GT(stats.passes, 1u);
  for (uint64_t pass = 1; pass <= stats.passes; ++pass) {
    EXPECT_EQ(trace.CountSpans("filter-pass-" + std::to_string(pass)), 1u)
        << "pass " << pass << " of " << stats.passes;
  }
  EXPECT_EQ(
      trace.CountSpans("filter-pass-" + std::to_string(stats.passes + 1)),
      0u);
  EXPECT_EQ(trace.CountSpans("presort"), 1u);
  EXPECT_EQ(trace.CountSpans("run-formation"), 1u);
}

TEST_F(SfsTest, ProjectionReducesPasses) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 3000, 7, 3,
                                                 /*payload_bytes=*/72));
  SkylineSpec spec = MaxSpec(t, 7);
  SfsOptions narrow;
  narrow.window_pages = 2;
  narrow.use_projection = false;
  SkylineRunStats no_proj;
  ASSERT_OK(
      ComputeSkylineSfs(t, spec, narrow, ExecContext(), "o1", &no_proj).status());
  narrow.use_projection = true;
  SkylineRunStats with_proj;
  ASSERT_OK(
      ComputeSkylineSfs(t, spec, narrow, ExecContext(), "o2", &with_proj).status());
  // Projected entries are 28 bytes vs 100-byte tuples: >3x window capacity,
  // so strictly fewer (or equal) passes and spills.
  EXPECT_LE(with_proj.passes, no_proj.passes);
  EXPECT_LT(with_proj.spilled_tuples, no_proj.spilled_tuples);
}

TEST_F(SfsTest, PipelinedIteratorStopsEarly) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 2000, 5, 4));
  SkylineSpec spec = MaxSpec(t, 5);
  // Presort manually, then pull only 3 rows from the iterator.
  TempFileManager tmp(env_.get(), "tmp");
  EntropyOrdering ord(&spec, t);
  ASSERT_OK_AND_ASSIGN(
      std::string sorted,
      SortHeapFile(env_.get(), &tmp, t.path(), t.schema().row_width(), ord,
                   SortOptions{}, ExecContext(), nullptr));
  SfsIterator iter(env_.get(), &tmp, sorted, &spec, 100, true, nullptr);
  ASSERT_OK(iter.Open());
  std::vector<std::string> first3;
  for (int i = 0; i < 3; ++i) {
    const char* row = iter.Next();
    ASSERT_NE(row, nullptr);
    first3.emplace_back(row, t.schema().row_width());
  }
  // Each of the 3 must be a genuine skyline tuple.
  const auto oracle = OracleSkylineMultiset(t, spec);
  for (const auto& row : first3) EXPECT_TRUE(oracle.count(row));
}

TEST_F(SfsTest, EmptyInput) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "out", &stats));
  EXPECT_EQ(sky.row_count(), 0u);
}

TEST_F(SfsTest, SingleRow) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{3, 4}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  ASSERT_OK_AND_ASSIGN(
      Table sky, ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "out", nullptr));
  EXPECT_EQ(sky.row_count(), 1u);
}

TEST_F(SfsTest, AllTuplesEquivalent) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{5, 5}, {5, 5}, {5, 5}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  ASSERT_OK_AND_ASSIGN(
      Table sky, ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "out", nullptr));
  // All equivalent rows are skyline members.
  EXPECT_EQ(sky.row_count(), 3u);
}

TEST_F(SfsTest, DiffDirectiveMatchesOracle) {
  // Small group domain so groups are non-trivial.
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 1200;
  gen.num_attributes = 4;
  gen.payload_bytes = 0;
  gen.small_domain = true;
  gen.domain_lo = 0;
  gen.domain_hi = 30;
  gen.seed = 5;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", gen));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kDiff},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax},
                                     {"a3", Directive::kMin}}));
  for (Presort presort : {Presort::kNested, Presort::kEntropy}) {
    SfsOptions opts;
    opts.presort = presort;
    SkylineRunStats stats;
    ASSERT_OK_AND_ASSIGN(Table sky,
                         ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", &stats));
    std::vector<char> rows = ReadAll(sky);
    EXPECT_EQ(
        RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
        OracleSkylineMultiset(t, spec));
  }
}

TEST_F(SfsTest, DiffWithTinyWindowMultiPass) {
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 2000;
  gen.num_attributes = 5;
  gen.payload_bytes = 0;
  gen.small_domain = true;
  gen.domain_lo = 0;
  gen.domain_hi = 50;
  gen.seed = 6;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", gen));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kDiff},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax},
                                     {"a3", Directive::kMax},
                                     {"a4", Directive::kMax}}));
  SfsOptions opts;
  opts.window_pages = 1;
  opts.use_projection = false;
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky, ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", &stats));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
}

TEST_F(SfsTest, UnsortedInputRejectedWithPresortNone) {
  // Ascending chain: every tuple dominates its predecessor — maximally
  // unsorted for a MAX skyline.
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{1, 1}, {2, 2}, {3, 3}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  SfsOptions opts;
  opts.presort = Presort::kNone;
  auto result = ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(SfsTest, PresortNoneAcceptsProperlySortedInput) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 500, 3, 7));
  SkylineSpec spec = MaxSpec(t, 3);
  // Sort externally, rebuild a table from the sorted file, then run with
  // kNone.
  TempFileManager tmp(env_.get(), "tmp");
  auto ord = MakeNestedSkylineOrdering(spec);
  ASSERT_OK_AND_ASSIGN(
      std::string sorted,
      SortHeapFile(env_.get(), &tmp, t.path(), t.schema().row_width(), *ord,
                   SortOptions{}, ExecContext(), nullptr));
  std::vector<ColumnStats> stats;
  for (size_t c = 0; c < t.schema().num_columns(); ++c)
    stats.push_back(t.stats(c));
  ASSERT_OK_AND_ASSIGN(Table sorted_table,
                       Table::Attach(t.schema(), env_.get(), sorted, stats));
  SfsOptions opts;
  opts.presort = Presort::kNone;
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkylineSfs(sorted_table, spec, opts, ExecContext(), "out", nullptr));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
}

TEST_F(SfsTest, OutputIsInMonotoneOrder) {
  // SFS output preserves the presort order (an "interesting order" for
  // downstream operators).
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 1000, 4, 8));
  SkylineSpec spec = MaxSpec(t, 4);
  SfsOptions opts;
  opts.presort = Presort::kEntropy;
  ASSERT_OK_AND_ASSIGN(Table sky, ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", nullptr));
  EntropyScorer scorer(&spec, t);
  std::vector<char> rows = ReadAll(sky);
  const size_t w = t.schema().row_width();
  for (uint64_t i = 1; i < sky.row_count(); ++i) {
    EXPECT_GE(scorer.Score(rows.data() + (i - 1) * w),
              scorer.Score(rows.data() + i * w));
  }
}

TEST_F(SfsTest, ResiduePlusSkylineEqualsInput) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 800, 4, 9));
  SkylineSpec spec = MaxSpec(t, 4);
  SfsOptions opts;
  opts.residue_path = "residue";
  ASSERT_OK_AND_ASSIGN(Table sky, ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", nullptr));
  std::vector<ColumnStats> stats;
  for (size_t c = 0; c < t.schema().num_columns(); ++c)
    stats.push_back(t.stats(c));
  ASSERT_OK_AND_ASSIGN(Table residue,
                       Table::Attach(t.schema(), env_.get(), "residue", stats));
  EXPECT_EQ(sky.row_count() + residue.row_count(), t.row_count());
  // Union of multisets equals input multiset.
  const size_t w = t.schema().row_width();
  std::vector<char> all = ReadAll(t);
  auto want = RowMultiset(all.data(), t.row_count(), w);
  std::vector<char> sky_rows = ReadAll(sky);
  std::vector<char> res_rows = ReadAll(residue);
  auto got = RowMultiset(sky_rows.data(), sky.row_count(), w);
  for (const auto& r : RowMultiset(res_rows.data(), residue.row_count(), w)) {
    got.insert(r);
  }
  EXPECT_EQ(got, want);
}

TEST_F(SfsTest, SchemaMismatchRejected) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{1, 2}}));
  ASSERT_OK_AND_ASSIGN(Table o, MakeIntTable(env_.get(), "o", 3, {{1, 2, 3}}));
  ASSERT_OK_AND_ASSIGN(SkylineSpec spec,
                       SkylineSpec::Make(o.schema(), {{"a2", Directive::kMax}}));
  EXPECT_TRUE(ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "out", nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SfsTest, StatsAccounting) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 5000, 6, 10));
  SkylineSpec spec = MaxSpec(t, 6);
  SfsOptions opts;
  opts.window_pages = 1;
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky, ComputeSkylineSfs(t, spec, opts, ExecContext(), "out", &stats));
  EXPECT_EQ(stats.input_rows, 5000u);
  EXPECT_EQ(stats.output_rows, sky.row_count());
  EXPECT_GT(stats.window_comparisons, 0u);
  EXPECT_GT(stats.sort_stats.runs_generated, 0u);
  EXPECT_GE(stats.sort_seconds, 0.0);
  EXPECT_GE(stats.filter_seconds, 0.0);
  EXPECT_EQ(stats.window_replacements, 0u);  // SFS never replaces
}

}  // namespace
}  // namespace skyline
