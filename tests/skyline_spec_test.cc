#include "core/skyline_spec.h"

#include "gtest/gtest.h"
#include "relation/generator.h"
#include "test_util.h"

namespace skyline {
namespace {

class SkylineSpecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    auto result = MakeGoodEatsTable(env_.get(), "g");
    ASSERT_TRUE(result.ok());
    table_.emplace(std::move(result).value());
  }

  std::unique_ptr<Env> env_;
  std::optional<Table> table_;
};

TEST_F(SkylineSpecTest, ResolvesColumns) {
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(table_->schema(), {{"S", Directive::kMax},
                                           {"price", Directive::kMin}}));
  ASSERT_EQ(spec.value_columns().size(), 2u);
  EXPECT_EQ(spec.value_columns()[0].column, 1u);
  EXPECT_TRUE(spec.value_columns()[0].max);
  EXPECT_EQ(spec.value_columns()[1].column, 4u);
  EXPECT_FALSE(spec.value_columns()[1].max);
  EXPECT_TRUE(spec.diff_columns().empty());
  EXPECT_FALSE(spec.has_diff());
  EXPECT_EQ(spec.num_dimensions(), 2u);
}

TEST_F(SkylineSpecTest, DiffColumnsSeparated) {
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(table_->schema(), {{"S", Directive::kMax},
                                           {"restaurant", Directive::kDiff}}));
  ASSERT_EQ(spec.diff_columns().size(), 1u);
  EXPECT_EQ(spec.diff_columns()[0], 0u);
  EXPECT_TRUE(spec.has_diff());
}

TEST_F(SkylineSpecTest, RejectsUnknownColumn) {
  EXPECT_TRUE(SkylineSpec::Make(table_->schema(), {{"zzz", Directive::kMax}})
                  .status()
                  .IsNotFound());
}

TEST_F(SkylineSpecTest, RejectsDuplicateColumn) {
  EXPECT_TRUE(SkylineSpec::Make(table_->schema(), {{"S", Directive::kMax},
                                                   {"S", Directive::kMin}})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SkylineSpecTest, RejectsEmptyCriteria) {
  EXPECT_TRUE(
      SkylineSpec::Make(table_->schema(), {}).status().IsInvalidArgument());
}

TEST_F(SkylineSpecTest, RejectsMinMaxOnString) {
  EXPECT_TRUE(
      SkylineSpec::Make(table_->schema(), {{"restaurant", Directive::kMax}})
          .status()
          .IsInvalidArgument());
}

TEST_F(SkylineSpecTest, RejectsDiffOnly) {
  EXPECT_TRUE(
      SkylineSpec::Make(table_->schema(), {{"restaurant", Directive::kDiff}})
          .status()
          .IsInvalidArgument());
}

TEST_F(SkylineSpecTest, ProjectedSchemaLayout) {
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(table_->schema(), {{"S", Directive::kMax},
                                           {"restaurant", Directive::kDiff},
                                           {"price", Directive::kMin}}));
  // Diff columns first, then values: (restaurant, S, price).
  const Schema& proj = spec.projected_schema();
  ASSERT_EQ(proj.num_columns(), 3u);
  EXPECT_EQ(proj.column(0).name, "restaurant");
  EXPECT_EQ(proj.column(1).name, "S");
  EXPECT_EQ(proj.column(2).name, "price");
  EXPECT_EQ(proj.row_width(), 20u + 4u + 8u);
}

TEST_F(SkylineSpecTest, ProjectRowCopiesAttributes) {
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(table_->schema(),
                        {{"S", Directive::kMax}, {"price", Directive::kMin}}));
  std::vector<char> rows = testing_util::ReadAll(*table_);
  std::vector<char> proj(spec.projected_schema().row_width());
  spec.ProjectRow(rows.data(), proj.data());  // Summer Moon: S=21 price=47.5
  RowView view(&spec.projected_schema(), proj.data());
  EXPECT_EQ(view.GetInt32(0), 21);
  EXPECT_EQ(view.GetFloat64(1), 47.50);
}

TEST_F(SkylineSpecTest, ProjectedSpecIsSelfProjecting) {
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(table_->schema(),
                        {{"S", Directive::kMax}, {"F", Directive::kMax}}));
  const SkylineSpec& proj = spec.projected_spec();
  EXPECT_TRUE(proj.schema().Equals(spec.projected_schema()));
  // Projection of a projection is the identity.
  EXPECT_TRUE(proj.projected_spec().schema().Equals(proj.schema()));
  EXPECT_EQ(proj.projected_schema().row_width(), proj.schema().row_width());
}

TEST_F(SkylineSpecTest, SameDiffGroup) {
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(table_->schema(), {{"restaurant", Directive::kDiff},
                                           {"S", Directive::kMax}}));
  std::vector<char> rows = testing_util::ReadAll(*table_);
  const size_t w = table_->schema().row_width();
  EXPECT_TRUE(spec.SameDiffGroup(rows.data(), rows.data()));
  EXPECT_FALSE(spec.SameDiffGroup(rows.data(), rows.data() + w));
}

TEST_F(SkylineSpecTest, SameDiffGroupTrivialWithoutDiff) {
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(table_->schema(), {{"S", Directive::kMax}}));
  std::vector<char> rows = testing_util::ReadAll(*table_);
  const size_t w = table_->schema().row_width();
  EXPECT_TRUE(spec.SameDiffGroup(rows.data(), rows.data() + w));
}

TEST_F(SkylineSpecTest, CopySemantics) {
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(table_->schema(),
                        {{"S", Directive::kMax}, {"F", Directive::kMax}}));
  SkylineSpec copy = spec;
  EXPECT_TRUE(copy.schema().Equals(spec.schema()));
  EXPECT_EQ(copy.value_columns().size(), 2u);
  // Deep copy: the projected spec exists independently.
  EXPECT_TRUE(
      copy.projected_spec().schema().Equals(spec.projected_spec().schema()));
  SkylineSpec assigned = std::move(copy);
  EXPECT_EQ(assigned.value_columns().size(), 2u);
}

TEST_F(SkylineSpecTest, ToStringRendersDirectives) {
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(table_->schema(), {{"S", Directive::kMax},
                                           {"price", Directive::kMin},
                                           {"restaurant", Directive::kDiff}}));
  EXPECT_EQ(spec.ToString(), "skyline of S max, price min, restaurant diff");
}

}  // namespace
}  // namespace skyline
