#include "test_util.h"

#include "exec/query.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;

TEST(Smoke, GoodEatsSkyline) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table guide, MakeGoodEatsTable(env.get(), "goodeats"));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(guide.schema(), {{"S", Directive::kMax},
                                         {"F", Directive::kMax},
                                         {"D", Directive::kMax},
                                         {"price", Directive::kMin}}));
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(
      Table sky, ComputeSkylineSfs(guide, spec, SfsOptions{}, ExecContext(),
                                   "out", &stats));
  EXPECT_EQ(sky.row_count(), 4u);
  EXPECT_EQ(stats.output_rows, 4u);

  std::set<std::string> names;
  std::vector<char> rows = testing_util::ReadAll(sky);
  for (uint64_t i = 0; i < sky.row_count(); ++i) {
    RowView row(&sky.schema(), rows.data() + i * sky.schema().row_width());
    names.insert(row.GetString(0));
  }
  EXPECT_EQ(names, (std::set<std::string>{"Summer Moon", "Zakopane",
                                          "Yamanote", "Fenton & Pickle"}));
}

}  // namespace
}  // namespace skyline
