#include "core/special2d.h"

#include "core/naive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

class Special2DTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

TEST_F(Special2DTest, PaperProofExample) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{4, 1}, {2, 2}, {1, 4}, {0, 0}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkyline2D(t, spec, SortOptions{}, ExecContext(), "out", &stats));
  EXPECT_EQ(sky.row_count(), 3u);
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.ExtraPages(), 0u);  // no window, no spills, ever
}

TEST_F(Special2DTest, MatchesOracleOnRandomData) {
  for (uint64_t seed : {101u, 102u, 103u}) {
    ASSERT_OK_AND_ASSIGN(
        Table t, MakeUniformTable(env_.get(), "t" + std::to_string(seed), 3000,
                                  2, seed, 0));
    ASSERT_OK_AND_ASSIGN(
        SkylineSpec spec,
        SkylineSpec::Make(t.schema(),
                          {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
    ASSERT_OK_AND_ASSIGN(Table sky,
                         ComputeSkyline2D(t, spec, SortOptions{}, ExecContext(), "out", nullptr));
    std::vector<char> rows = ReadAll(sky);
    EXPECT_EQ(
        RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
        OracleSkylineMultiset(t, spec))
        << "seed " << seed;
  }
}

TEST_F(Special2DTest, TiesAndDuplicates) {
  // Small domain: plenty of exact ties on both criteria.
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 2000;
  gen.num_attributes = 2;
  gen.payload_bytes = 4;  // distinguish equivalent tuples
  gen.small_domain = true;
  gen.domain_lo = 0;
  gen.domain_hi = 7;
  gen.seed = 104;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", gen));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkyline2D(t, spec, SortOptions{}, ExecContext(), "out", nullptr));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
}

TEST_F(Special2DTest, MinMaxMix) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 2000, 2, 105, 0));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMin}, {"a1", Directive::kMax}}));
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkyline2D(t, spec, SortOptions{}, ExecContext(), "out", nullptr));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
}

TEST_F(Special2DTest, DiffGroupsSupported) {
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 1500;
  gen.num_attributes = 3;
  gen.payload_bytes = 0;
  gen.small_domain = true;
  gen.domain_lo = 0;
  gen.domain_hi = 25;
  gen.seed = 106;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", gen));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kDiff},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMin}}));
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkyline2D(t, spec, SortOptions{}, ExecContext(), "out", nullptr));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
}

TEST_F(Special2DTest, RejectsWrongDimensionality) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 3, {{1, 2, 3}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec3,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}}));
  EXPECT_TRUE(ComputeSkyline2D(t, spec3, SortOptions{}, ExecContext(), "out", nullptr)
                  .status()
                  .IsInvalidArgument());
  ASSERT_OK_AND_ASSIGN(SkylineSpec spec1,
                       SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax}}));
  EXPECT_TRUE(ComputeSkyline2D(t, spec1, SortOptions{}, ExecContext(), "out", nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(Special2DTest, DominatedChainKeepsOnlyHead) {
  ASSERT_OK_AND_ASSIGN(
      Table t,
      MakeIntTable(env_.get(), "t", 2, {{1, 1}, {2, 2}, {3, 3}, {4, 4}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkyline2D(t, spec, SortOptions{}, ExecContext(), "out", nullptr));
  ASSERT_EQ(sky.row_count(), 1u);
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowView(&t.schema(), rows.data()).GetInt32(0), 4);
}

TEST_F(Special2DTest, EmptyInput) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkyline2D(t, spec, SortOptions{}, ExecContext(), "out", nullptr));
  EXPECT_EQ(sky.row_count(), 0u);
}

}  // namespace
}  // namespace skyline
