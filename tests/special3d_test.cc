#include "core/special3d.h"

#include "core/naive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

class Special3DTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

TEST_F(Special3DTest, HandCheckedExample) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 3,
                            {{3, 1, 1},    // skyline (best a0)
                             {2, 3, 1},    // skyline (incomparable)
                             {2, 1, 3},    // skyline
                             {2, 1, 1},    // dominated by both 2xx rows
                             {1, 2, 2},    // skyline (balanced)
                             {1, 3, 1},    // dominated by (2,3,1)
                             {0, 0, 0}})); // dominated by everything
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}}));
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkyline3D(t, spec, SortOptions{}, ExecContext(), "out", &stats));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
  EXPECT_EQ(sky.row_count(), 4u);
  EXPECT_EQ(stats.ExtraPages(), 0u);
}

TEST_F(Special3DTest, MatchesOracleOnRandomData) {
  for (uint64_t seed : {111u, 112u, 113u, 114u}) {
    ASSERT_OK_AND_ASSIGN(
        Table t, MakeUniformTable(env_.get(), "t" + std::to_string(seed), 3000,
                                  3, seed, 0));
    ASSERT_OK_AND_ASSIGN(
        SkylineSpec spec,
        SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                       {"a1", Directive::kMax},
                                       {"a2", Directive::kMax}}));
    ASSERT_OK_AND_ASSIGN(Table sky,
                         ComputeSkyline3D(t, spec, SortOptions{}, ExecContext(), "out", nullptr));
    std::vector<char> rows = ReadAll(sky);
    EXPECT_EQ(
        RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
        OracleSkylineMultiset(t, spec))
        << "seed " << seed;
  }
}

TEST_F(Special3DTest, SmallDomainManyTies) {
  // Heavy primary-value groups and exact (a1,a2) duplicates stress the
  // group scan and the staircase covered/replace logic.
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 4000;
  gen.num_attributes = 3;
  gen.payload_bytes = 4;
  gen.small_domain = true;
  gen.domain_lo = 0;
  gen.domain_hi = 5;
  gen.seed = 115;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", gen));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}}));
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkyline3D(t, spec, SortOptions{}, ExecContext(), "out", nullptr));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
}

TEST_F(Special3DTest, MixedDirections) {
  for (uint64_t seed : {116u, 117u}) {
    ASSERT_OK_AND_ASSIGN(
        Table t, MakeUniformTable(env_.get(), "t" + std::to_string(seed), 2000,
                                  3, seed, 0));
    ASSERT_OK_AND_ASSIGN(
        SkylineSpec spec,
        SkylineSpec::Make(t.schema(), {{"a0", Directive::kMin},
                                       {"a1", Directive::kMax},
                                       {"a2", Directive::kMin}}));
    ASSERT_OK_AND_ASSIGN(Table sky,
                         ComputeSkyline3D(t, spec, SortOptions{}, ExecContext(), "out", nullptr));
    std::vector<char> rows = ReadAll(sky);
    EXPECT_EQ(
        RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
        OracleSkylineMultiset(t, spec));
  }
}

TEST_F(Special3DTest, DiffGroups) {
  auto env = NewMemEnv();
  GeneratorOptions gen;
  gen.num_rows = 2000;
  gen.num_attributes = 4;
  gen.payload_bytes = 0;
  gen.small_domain = true;
  gen.domain_lo = 0;
  gen.domain_hi = 12;
  gen.seed = 118;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env.get(), "t", gen));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kDiff},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax},
                                     {"a3", Directive::kMin}}));
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkyline3D(t, spec, SortOptions{}, ExecContext(), "out", nullptr));
  std::vector<char> rows = ReadAll(sky);
  EXPECT_EQ(RowMultiset(rows.data(), sky.row_count(), t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
}

TEST_F(Special3DTest, EquivalentTuplesAllKept) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 3,
                            {{5, 5, 5}, {5, 5, 5}, {5, 5, 5}, {1, 1, 1}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}}));
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkyline3D(t, spec, SortOptions{}, ExecContext(), "out", nullptr));
  EXPECT_EQ(sky.row_count(), 3u);
}

TEST_F(Special3DTest, RejectsWrongDimensionality) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{1, 2}}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(),
                        {{"a0", Directive::kMax}, {"a1", Directive::kMax}}));
  EXPECT_TRUE(ComputeSkyline3D(t, spec, SortOptions{}, ExecContext(), "out", nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(Special3DTest, EmptyInput) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 3, {}));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}}));
  ASSERT_OK_AND_ASSIGN(Table sky,
                       ComputeSkyline3D(t, spec, SortOptions{}, ExecContext(), "out", nullptr));
  EXPECT_EQ(sky.row_count(), 0u);
}

TEST_F(Special3DTest, DominanceWorkIsLinearInInput) {
  // The point of the special case: each tuple costs at most one staircase
  // lookup plus one within-group frontier check — O(n) dominance tests
  // total (each O(log s)), versus the general window's O(n·s) worst case.
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 20000, 3, 119, 0));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}}));
  SkylineRunStats sky3d_stats;
  ASSERT_OK(ComputeSkyline3D(t, spec, SortOptions{}, ExecContext(), "o1", &sky3d_stats).status());
  SkylineRunStats sfs_stats;
  ASSERT_OK(ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "o2", &sfs_stats).status());
  EXPECT_EQ(sky3d_stats.output_rows, sfs_stats.output_rows);
  EXPECT_LE(sky3d_stats.window_comparisons, 2 * t.row_count());
}

}  // namespace
}  // namespace skyline
