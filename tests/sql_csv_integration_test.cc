// End-to-end: CSV files → catalog → the paper's SQL → results. The path
// the sql_shell example exercises, under test.

#include <cinttypes>
#include <cstdio>

#include "core/dominance_batch.h"
#include "core/skyline.h"
#include "gtest/gtest.h"
#include "sql/executor.h"
#include "test_util.h"

namespace skyline {
namespace {

constexpr char kHotelsCsv[] =
    "name,city,stars,rating,price\n"
    "Alpha,York,3,82,120\n"
    "Bravo,York,4,90,210\n"
    "Charlie,York,2,70,80\n"
    "Delta,Buffalo,5,95,320\n"
    "Echo,Buffalo,3,75,95\n"
    "Foxtrot,Buffalo,4,88,180\n"
    "Golf,York,1,55,45\n"
    "Hotel,Buffalo,2,65,70\n";

class SqlCsvIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    auto table = CsvToTable(env_.get(), "hotels_heap", kHotelsCsv);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    hotels_.emplace(std::move(table).value());
    catalog_ = std::make_unique<Catalog>(env_.get());
    catalog_->Register("hotels", &*hotels_);
  }

  std::vector<std::string> RunForColumn0(const std::string& sql) {
    std::vector<std::string> out;
    Status st = ExecuteSql(*catalog_, sql, SqlOptions{},
                           [&](const RowView& row) {
                             out.push_back(row.GetString(0));
                             return Status::OK();
                           });
    SKYLINE_CHECK(st.ok()) << st.ToString();
    return out;
  }

  std::unique_ptr<Env> env_;
  std::optional<Table> hotels_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(SqlCsvIntegrationTest, InferredTypesSupportPredicatesAndSkyline) {
  // rating/price inferred Int32, name/city strings.
  EXPECT_EQ(hotels_->schema().column(0).type, ColumnType::kFixedString);
  EXPECT_EQ(hotels_->schema().column(2).type, ColumnType::kInt32);
  auto names = RunForColumn0(
      "SELECT name FROM hotels WHERE city = 'York' "
      "SKYLINE OF rating MAX, price MIN ORDER BY price");
  // York hotels: Alpha(82,120) Bravo(90,210) Charlie(70,80) Golf(55,45).
  // Skyline: Golf (cheapest), Charlie (cheaper than Alpha? 80<120 rating
  // 70<82: incomparable -> stays), Alpha, Bravo. All four are mutually
  // incomparable (price and rating both increase together).
  EXPECT_EQ(names, (std::vector<std::string>{"Golf", "Charlie", "Alpha",
                                             "Bravo"}));
}

TEST_F(SqlCsvIntegrationTest, DiffPerCity) {
  auto names = RunForColumn0(
      "SELECT name, city FROM hotels "
      "SKYLINE OF city DIFF, rating MAX, price MIN ORDER BY city, price");
  // Per-city skylines: Buffalo {Hotel(65,70) Echo(75,95) Foxtrot(88,180)
  // Delta(95,320)}, York {Golf Charlie Alpha Bravo} — all incomparable
  // within their city here.
  EXPECT_EQ(names.size(), 8u);
}

TEST_F(SqlCsvIntegrationTest, RoundTripThroughCsvAndMetadata) {
  // Export the SQL result to CSV, re-import, and query again.
  SKYLINE_CHECK(hotels_.has_value());
  std::multiset<std::string> first;
  ASSERT_OK(ExecuteSql(*catalog_,
                       "SELECT name, rating, price FROM hotels "
                       "SKYLINE OF rating MAX, price MIN",
                       SqlOptions{}, [&](const RowView& row) {
                         first.insert(row.GetString(0));
                         return Status::OK();
                       }));
  ASSERT_OK_AND_ASSIGN(std::string csv, TableToCsv(*hotels_));
  ASSERT_OK_AND_ASSIGN(Table again, CsvToTable(env_.get(), "again", csv));
  Catalog catalog2(env_.get());
  catalog2.Register("hotels", &again);
  std::multiset<std::string> second;
  ASSERT_OK(ExecuteSql(catalog2,
                       "SELECT name, rating, price FROM hotels "
                       "SKYLINE OF rating MAX, price MIN",
                       SqlOptions{}, [&](const RowView& row) {
                         second.insert(row.GetString(0));
                         return Status::OK();
                       }));
  EXPECT_EQ(first, second);
}

TEST(SqlMixedTypes, ColumnarAndRowPathsAreByteIdentical) {
  // A float64 + int64 + string-DIFF spec end-to-end through SQL, executed
  // twice: once on the columnar kernel path and once with the row
  // fallback forced. The two runs must produce identical rows in
  // identical order. The data plants the traps the order-key transform
  // exists for: int64 weights that collide when widened to double
  // (differ only beyond 2^53) and a -0.0/+0.0 score pair.
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(
      Schema schema,
      Schema::Make({ColumnDef::FixedString("name", 12),
                    ColumnDef::Float64("score"), ColumnDef::Int64("weight"),
                    ColumnDef::FixedString("city", 8),
                    ColumnDef::Int32("rank")}));
  TableBuilder builder(env.get(), "mixed_heap", schema);
  ASSERT_OK(builder.Open());
  struct R {
    const char* name;
    double score;
    int64_t weight;
    const char* city;
    int32_t rank;
  };
  const R kRows[] = {
      {"Ada", 1.5, (int64_t{1} << 53) + 2, "york", 5},
      {"Bee", 1.5, (int64_t{1} << 53) + 1, "york", 5},  // beaten on weight only
      {"Cat", -0.0, 77, "kent", 5},                     // beaten on -0.0 < +0.0
      {"Dot", 0.0, 77, "kent", 5},
      {"Eel", 2.0, 100, "buffalo", 3},
      {"Fox", 3.0, 50, "buffalo", 4},
  };
  RowBuffer row(&builder.schema());
  for (const R& r : kRows) {
    row.SetString(0, r.name);
    row.SetFloat64(1, r.score);
    row.SetInt64(2, r.weight);
    row.SetString(3, r.city);
    row.SetInt32(4, r.rank);
    ASSERT_OK(builder.Append(row));
  }
  ASSERT_OK_AND_ASSIGN(Table mixed, builder.Finish());

  // The spec itself must lower to the columnar path.
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(mixed.schema(), {{"city", Directive::kDiff},
                                         {"score", Directive::kMax},
                                         {"weight", Directive::kMax},
                                         {"rank", Directive::kMin}}));
  EXPECT_TRUE(DominanceIndex(&spec).columnar());

  Catalog catalog(env.get());
  catalog.Register("mixed", &mixed);
  const std::string sql =
      "SELECT * FROM mixed SKYLINE OF city DIFF, score MAX, weight MAX, "
      "rank MIN";
  auto run = [&]() {
    std::vector<std::string> out;
    Status st = ExecuteSql(catalog, sql, SqlOptions{},
                           [&](const RowView& r) {
                             char line[96];
                             std::snprintf(line, sizeof(line),
                                           "%s|%.17g|%" PRId64 "|%s|%d",
                                           r.GetString(0).c_str(),
                                           r.GetFloat64(1), r.GetInt64(2),
                                           r.GetString(3).c_str(),
                                           r.GetInt32(4));
                             out.emplace_back(line);
                             return Status::OK();
                           });
    SKYLINE_CHECK(st.ok()) << st.ToString();
    return out;
  };

  const std::vector<std::string> columnar = run();
  SetForceRowDominancePath(true);
  const std::vector<std::string> row_path = run();
  SetForceRowDominancePath(false);
  EXPECT_EQ(columnar, row_path);

  std::multiset<std::string> names;
  for (const std::string& line : columnar) {
    names.insert(line.substr(0, line.find('|')));
  }
  EXPECT_EQ(names, (std::multiset<std::string>{"Ada", "Dot", "Eel", "Fox"}));
}

}  // namespace
}  // namespace skyline
