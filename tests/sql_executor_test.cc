#include "sql/executor.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeUniformTable;

class SqlExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    auto guide = MakeGoodEatsTable(env_.get(), "goodeats_heap");
    ASSERT_TRUE(guide.ok());
    guide_.emplace(std::move(guide).value());
    catalog_ = std::make_unique<Catalog>(env_.get());
    catalog_->Register("GoodEats", &*guide_);
  }

  /// Runs `sql` and collects column 0 (restaurant names) of the output.
  std::set<std::string> RunForNames(const std::string& sql) {
    std::set<std::string> names;
    Status st = ExecuteSql(*catalog_, sql, SqlOptions{},
                           [&](const RowView& row) {
                             names.insert(row.GetString(0));
                             return Status::OK();
                           });
    SKYLINE_CHECK(st.ok()) << st.ToString();
    return names;
  }

  std::unique_ptr<Env> env_;
  std::optional<Table> guide_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(SqlExecutorTest, PaperFigure4QueryVerbatim) {
  // Figure 4 of the paper, executed end to end through lexer, parser,
  // binder, and the SFS pipeline.
  EXPECT_EQ(RunForNames("select * from GoodEats "
                        "skyline of S max, F max, D max, price min"),
            (std::set<std::string>{"Summer Moon", "Zakopane", "Yamanote",
                                   "Fenton & Pickle"}));
}

TEST_F(SqlExecutorTest, WhereThenSkyline) {
  EXPECT_EQ(RunForNames("SELECT * FROM GoodEats WHERE price < 50 "
                        "SKYLINE OF S MAX, F MAX, D MAX, price MIN"),
            (std::set<std::string>{"Summer Moon", "Fenton & Pickle"}));
}

TEST_F(SqlExecutorTest, StringPredicate) {
  EXPECT_EQ(RunForNames("SELECT * FROM GoodEats WHERE restaurant = 'Zakopane'"),
            (std::set<std::string>{"Zakopane"}));
}

TEST_F(SqlExecutorTest, ProjectionAndLimit) {
  int count = 0;
  size_t columns = 0;
  ASSERT_OK(ExecuteSql(*catalog_,
                       "SELECT restaurant, price FROM GoodEats "
                       "SKYLINE OF S MAX, price MIN LIMIT 2",
                       SqlOptions{}, [&](const RowView& row) {
                         columns = row.schema().num_columns();
                         ++count;
                         return Status::OK();
                       }));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(columns, 2u);
}

TEST_F(SqlExecutorTest, PlainSelectReturnsAllRows) {
  EXPECT_EQ(RunForNames("SELECT * FROM GoodEats").size(), 6u);
}

TEST_F(SqlExecutorTest, UnknownTableFails) {
  Status st = ExecuteSql(*catalog_, "SELECT * FROM Nope", SqlOptions{},
                         [](const RowView&) { return Status::OK(); });
  EXPECT_TRUE(st.IsNotFound());
}

TEST_F(SqlExecutorTest, UnknownColumnFails) {
  Status st = ExecuteSql(*catalog_, "SELECT zzz FROM GoodEats", SqlOptions{},
                         [](const RowView&) { return Status::OK(); });
  EXPECT_TRUE(st.IsNotFound());
  st = ExecuteSql(*catalog_, "SELECT * FROM GoodEats SKYLINE OF zzz MAX",
                  SqlOptions{}, [](const RowView&) { return Status::OK(); });
  EXPECT_TRUE(st.IsNotFound());
}

TEST_F(SqlExecutorTest, TypeMismatchedPredicateFails) {
  Status st = ExecuteSql(*catalog_, "SELECT * FROM GoodEats WHERE price = 'x'",
                         SqlOptions{}, [](const RowView&) { return Status::OK(); });
  EXPECT_TRUE(st.IsInvalidArgument());
  st = ExecuteSql(*catalog_, "SELECT * FROM GoodEats WHERE restaurant = 5",
                  SqlOptions{}, [](const RowView&) { return Status::OK(); });
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST_F(SqlExecutorTest, SkylineOnStringColumnFails) {
  Status st = ExecuteSql(*catalog_,
                         "SELECT * FROM GoodEats SKYLINE OF restaurant MAX",
                         SqlOptions{}, [](const RowView&) { return Status::OK(); });
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST_F(SqlExecutorTest, DiffViaSql) {
  // Best by price within each decor score.
  std::multiset<int32_t> decors;
  ASSERT_OK(ExecuteSql(*catalog_,
                       "SELECT D, price FROM GoodEats "
                       "SKYLINE OF D DIFF, price MIN",
                       SqlOptions{}, [&](const RowView& row) {
                         decors.insert(row.GetInt32(0));
                         return Status::OK();
                       }));
  // Six restaurants, all with distinct decor scores -> everyone survives.
  EXPECT_EQ(decors.size(), 6u);
}

TEST_F(SqlExecutorTest, SkylineSqlMatchesDirectApi) {
  auto env = NewMemEnv();
  auto table = MakeUniformTable(env.get(), "t", 800, 3, 501);
  ASSERT_TRUE(table.ok());
  Catalog catalog(env.get());
  catalog.Register("data", &*table);

  std::multiset<std::string> via_sql;
  ASSERT_OK(ExecuteSql(catalog,
                       "SELECT * FROM data SKYLINE OF a0 MAX, a1 MAX, a2 MAX",
                       SqlOptions{}, [&](const RowView& row) {
                         via_sql.emplace(row.data(), row.schema().row_width());
                         return Status::OK();
                       }));
  EXPECT_EQ(via_sql, testing_util::OracleSkylineMultiset(
                         *table, [&] {
                           auto spec = SkylineSpec::Make(
                               table->schema(), {{"a0", Directive::kMax},
                                                 {"a1", Directive::kMax},
                                                 {"a2", Directive::kMax}});
                           SKYLINE_CHECK(spec.ok());
                           return std::move(spec).value();
                         }()));
}

TEST_F(SqlExecutorTest, VisitorErrorPropagates) {
  Status st =
      ExecuteSql(*catalog_, "SELECT * FROM GoodEats", SqlOptions{},
                 [](const RowView&) { return Status::Internal("stop"); });
  EXPECT_TRUE(st.IsInternal());
}


TEST_F(SqlExecutorTest, OrderByExecutes) {
  std::vector<double> prices;
  ASSERT_OK(ExecuteSql(*catalog_,
                       "SELECT price FROM GoodEats "
                       "SKYLINE OF S MAX, F MAX, D MAX, price MIN "
                       "ORDER BY price DESC",
                       SqlOptions{}, [&](const RowView& row) {
                         prices.push_back(row.GetFloat64(0));
                         return Status::OK();
                       }));
  ASSERT_EQ(prices.size(), 4u);
  EXPECT_TRUE(std::is_sorted(prices.rbegin(), prices.rend()));
}

TEST_F(SqlExecutorTest, OrderByNonProjectedColumn) {
  // ORDER BY binds to the base schema, so sorting by a column that the
  // SELECT list drops is allowed.
  std::vector<std::string> names;
  ASSERT_OK(ExecuteSql(*catalog_,
                       "SELECT restaurant FROM GoodEats ORDER BY price",
                       SqlOptions{}, [&](const RowView& row) {
                         names.push_back(row.GetString(0));
                         return Status::OK();
                       }));
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names.front(), "Fenton & Pickle");  // cheapest
  EXPECT_EQ(names.back(), "Brearton Grill");    // priciest
}

TEST_F(SqlExecutorTest, OrderByUnknownColumnFails) {
  Status st = ExecuteSql(*catalog_, "SELECT * FROM GoodEats ORDER BY zzz",
                         SqlOptions{}, [](const RowView&) { return Status::OK(); });
  EXPECT_TRUE(st.IsNotFound());
}


TEST_F(SqlExecutorTest, ExplainRendersPlan) {
  ASSERT_OK_AND_ASSIGN(
      std::string plan,
      ExplainSql(*catalog_,
                 "SELECT restaurant FROM GoodEats WHERE price < 60 "
                 "SKYLINE OF S MAX, price MIN ORDER BY price LIMIT 3"));
  // Root-first: Limit > Project > Sort > Skyline > TableScan. The numeric
  // WHERE predicate is pushed into the skyline operator as a constraint
  // box (the "constrained" label), so no Select node remains.
  const size_t limit_pos = plan.find("Limit 3");
  const size_t project_pos = plan.find("Project");
  const size_t sort_pos = plan.find("Sort");
  const size_t skyline_pos = plan.find("Skyline[SFS]");
  const size_t scan_pos = plan.find("TableScan");
  ASSERT_NE(limit_pos, std::string::npos) << plan;
  ASSERT_NE(project_pos, std::string::npos) << plan;
  ASSERT_NE(sort_pos, std::string::npos) << plan;
  ASSERT_NE(skyline_pos, std::string::npos) << plan;
  ASSERT_NE(scan_pos, std::string::npos) << plan;
  EXPECT_LT(limit_pos, project_pos);
  EXPECT_LT(project_pos, sort_pos);
  EXPECT_LT(sort_pos, skyline_pos);
  EXPECT_LT(skyline_pos, scan_pos);
  EXPECT_EQ(plan.find("Select"), std::string::npos) << plan;
  EXPECT_NE(plan.find("skyline of S max, price min constrained"),
            std::string::npos)
      << plan;

  // A string predicate cannot be pushed; it stays as a Select node.
  ASSERT_OK_AND_ASSIGN(
      std::string residual_plan,
      ExplainSql(*catalog_,
                 "SELECT restaurant FROM GoodEats WHERE restaurant != 'x' "
                 "SKYLINE OF S MAX, price MIN"));
  EXPECT_NE(residual_plan.find("Select"), std::string::npos) << residual_plan;
}

TEST_F(SqlExecutorTest, AutoAlgorithmViaSqlOptions) {
  SqlOptions options;
  options.algorithm = SkylineAlgorithm::kAuto;
  std::set<std::string> names;
  ASSERT_OK(ExecuteSql(*catalog_,
                       "SELECT restaurant FROM GoodEats "
                       "SKYLINE OF F MAX, price MIN",
                       options, [&](const RowView& row) {
                         names.insert(row.GetString(0));
                         return Status::OK();
                       }));
  // 2-dim spec: routed through the special-case scan; same answer as SFS.
  std::set<std::string> sfs_names;
  ASSERT_OK(ExecuteSql(*catalog_,
                       "SELECT restaurant FROM GoodEats "
                       "SKYLINE OF F MAX, price MIN",
                       SqlOptions{}, [&](const RowView& row) {
                         sfs_names.insert(row.GetString(0));
                         return Status::OK();
                       }));
  EXPECT_EQ(names, sfs_names);
  ASSERT_OK_AND_ASSIGN(
      std::string plan,
      ExplainSql(*catalog_,
                 "SELECT * FROM GoodEats SKYLINE OF F MAX, price MIN",
                 options));
  EXPECT_NE(plan.find("Skyline[auto]"), std::string::npos) << plan;
}

TEST_F(SqlExecutorTest, ExplainThroughSqlReturnsPlanWithoutRunning) {
  SqlRunInfo info;
  int visits = 0;
  ASSERT_OK(ExecuteSql(*catalog_,
                       "EXPLAIN SELECT restaurant FROM GoodEats "
                       "SKYLINE OF S MAX, price MIN",
                       SqlOptions{},
                       [&](const RowView&) {
                         ++visits;
                         return Status::OK();
                       },
                       &info));
  EXPECT_EQ(info.explain, ExplainMode::kPlan);
  EXPECT_FALSE(info.executed);
  EXPECT_EQ(visits, 0);
  EXPECT_NE(info.plan_text.find("Skyline[SFS]"), std::string::npos)
      << info.plan_text;
  EXPECT_NE(info.plan_text.find("TableScan"), std::string::npos);
  EXPECT_TRUE(info.plan.empty());
}

// The tentpole acceptance test: EXPLAIN ANALYZE runs the statement and the
// annotated plan's row counts and skyline counters match what a plain run
// of the same query reports.
TEST_F(SqlExecutorTest, ExplainAnalyzeMatchesPlainRun) {
  const std::string query =
      "SELECT restaurant FROM GoodEats "
      "SKYLINE OF S MAX, F MAX, D MAX, price MIN";

  // Plain profiled run: 4 skyline rows (the paper's Figure 4 answer).
  SqlRunInfo plain;
  std::set<std::string> names;
  ASSERT_OK(ExecuteSql(*catalog_, query, SqlOptions{},
                       [&](const RowView& row) {
                         names.insert(row.GetString(0));
                         return Status::OK();
                       },
                       &plain));
  EXPECT_EQ(plain.explain, ExplainMode::kNone);
  EXPECT_TRUE(plain.executed);
  EXPECT_EQ(names, (std::set<std::string>{"Summer Moon", "Zakopane",
                                          "Yamanote", "Fenton & Pickle"}));

  // EXPLAIN ANALYZE of the same query: rows are consumed internally.
  SqlRunInfo analyzed;
  int visits = 0;
  ASSERT_OK(ExecuteSql(*catalog_, "EXPLAIN ANALYZE " + query, SqlOptions{},
                       [&](const RowView&) {
                         ++visits;
                         return Status::OK();
                       },
                       &analyzed));
  EXPECT_EQ(analyzed.explain, ExplainMode::kAnalyze);
  EXPECT_TRUE(analyzed.executed);
  EXPECT_EQ(visits, 0) << "EXPLAIN ANALYZE must not surface rows";

  // Same plan shape, same per-operator row counts, same skyline counters.
  ASSERT_EQ(analyzed.plan.size(), plain.plan.size());
  ASSERT_FALSE(analyzed.plan.empty());
  for (size_t i = 0; i < analyzed.plan.size(); ++i) {
    EXPECT_EQ(analyzed.plan[i].label, plain.plan[i].label);
    EXPECT_EQ(analyzed.plan[i].depth, plain.plan[i].depth);
    EXPECT_EQ(analyzed.plan[i].rows_in, plain.plan[i].rows_in) << i;
    EXPECT_EQ(analyzed.plan[i].rows_out, plain.plan[i].rows_out) << i;
    EXPECT_EQ(analyzed.plan[i].counters, plain.plan[i].counters) << i;
  }
  // The root emits the 4 skyline rows in both runs.
  EXPECT_EQ(analyzed.plan[0].rows_out, 4u);

  // The annotated rendering carries the stats inline.
  EXPECT_NE(analyzed.plan_text.find("out=4"), std::string::npos)
      << analyzed.plan_text;
  EXPECT_NE(analyzed.plan_text.find("input_rows=6"), std::string::npos)
      << analyzed.plan_text;
  // Timing ran for the analyze pass: the blocking skyline node has time.
  uint64_t max_total = 0;
  for (const PlanNodeStats& node : analyzed.plan) {
    max_total = std::max(max_total, node.total_ns);
  }
  EXPECT_GT(max_total, 0u);
}

TEST_F(SqlExecutorTest, ExplainAnalyzeCarriesRoutingDecision) {
  // Under kAuto the cost model samples the input and records its access
  // path choice; EXPLAIN ANALYZE surfaces it as a plan note.
  SqlOptions options;
  options.algorithm = SkylineAlgorithm::kAuto;
  SqlRunInfo info;
  ASSERT_OK(ExecuteSql(*catalog_,
                       "EXPLAIN ANALYZE SELECT restaurant FROM GoodEats "
                       "SKYLINE OF S MAX, F MAX, D MAX, price MIN",
                       options, [](const RowView&) { return Status::OK(); },
                       &info));
  ASSERT_FALSE(info.plan.empty());
  const PlanNodeStats* skyline_node = nullptr;
  for (const PlanNodeStats& node : info.plan) {
    if (node.label.find("Skyline") != std::string::npos) skyline_node = &node;
  }
  ASSERT_NE(skyline_node, nullptr);
  bool has_access = false;
  for (const auto& kv : skyline_node->notes) {
    if (kv.first == "access") has_access = true;
  }
  EXPECT_TRUE(has_access) << info.plan_text;
}

TEST_F(SqlExecutorTest, PlainRunWithInfoCollectsPlanAndVisitsRows) {
  SqlRunInfo info;
  int visits = 0;
  ASSERT_OK(ExecuteSql(*catalog_,
                       "SELECT restaurant FROM GoodEats "
                       "SKYLINE OF S MAX, price MIN LIMIT 1",
                       SqlOptions{},
                       [&](const RowView&) {
                         ++visits;
                         return Status::OK();
                       },
                       &info));
  EXPECT_EQ(visits, 1);
  EXPECT_TRUE(info.executed);
  ASSERT_FALSE(info.plan.empty());
  EXPECT_EQ(info.plan[0].rows_out, 1u);
}

}  // namespace
}  // namespace skyline
