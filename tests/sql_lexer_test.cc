#include "sql/lexer.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

std::vector<Token> MustLex(const std::string& sql) {
  auto result = LexSql(sql);
  SKYLINE_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(SqlLexer, KeywordsCaseInsensitive) {
  auto tokens = MustLex("select Select SELECT sKyLiNe");
  ASSERT_EQ(tokens.size(), 5u);  // + end
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kKeyword);
    EXPECT_EQ(tokens[i].text, "SELECT");
  }
  EXPECT_EQ(tokens[3].text, "SKYLINE");
}

TEST(SqlLexer, IdentifiersKeepCase) {
  auto tokens = MustLex("GoodEats my_col _x a1");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "GoodEats");
  EXPECT_EQ(tokens[1].text, "my_col");
  EXPECT_EQ(tokens[2].text, "_x");
  EXPECT_EQ(tokens[3].text, "a1");
}

TEST(SqlLexer, Numbers) {
  auto tokens = MustLex("42 -7 3.5 .25 1e6 2.5E-3 +8");
  ASSERT_EQ(tokens.size(), 8u);
  const char* expected[] = {"42", "-7", "3.5", ".25", "1e6", "2.5E-3", "+8"};
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kNumber) << i;
    EXPECT_EQ(tokens[i].text, expected[i]) << i;
  }
}

TEST(SqlLexer, Strings) {
  auto tokens = MustLex("'hello' 'it''s' ''");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
  EXPECT_EQ(tokens[2].text, "");
}

TEST(SqlLexer, UnterminatedStringFails) {
  EXPECT_TRUE(LexSql("'oops").status().IsInvalidArgument());
}

TEST(SqlLexer, Operators) {
  auto tokens = MustLex("= != < <= > >= <>");
  const char* expected[] = {"=", "!=", "<", "<=", ">", ">=", "!="};
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kOperator) << i;
    EXPECT_EQ(tokens[i].text, expected[i]) << i;
  }
}

TEST(SqlLexer, PunctuationAndOffsets) {
  auto tokens = MustLex("a, *");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].kind, TokenKind::kComma);
  EXPECT_EQ(tokens[2].kind, TokenKind::kStar);
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 1u);
  EXPECT_EQ(tokens[2].offset, 3u);
}

TEST(SqlLexer, StrayCharacterFails) {
  EXPECT_TRUE(LexSql("select #").status().IsInvalidArgument());
}

TEST(SqlLexer, EmptyInputIsJustEnd) {
  auto tokens = MustLex("   ");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

}  // namespace
}  // namespace skyline
