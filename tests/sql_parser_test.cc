#include "sql/parser.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

SelectStatement MustParse(const std::string& sql) {
  auto result = ParseSelect(sql);
  SKYLINE_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(SqlParser, PaperFigure4Query) {
  SelectStatement stmt = MustParse(
      "select * from GoodEats skyline of S max, F max, D max, price min");
  EXPECT_TRUE(stmt.columns.empty());  // *
  EXPECT_EQ(stmt.table, "GoodEats");
  EXPECT_TRUE(stmt.predicates.empty());
  ASSERT_EQ(stmt.skyline.size(), 4u);
  EXPECT_EQ(stmt.skyline[0].column, "S");
  EXPECT_EQ(stmt.skyline[0].directive, Directive::kMax);
  EXPECT_EQ(stmt.skyline[3].column, "price");
  EXPECT_EQ(stmt.skyline[3].directive, Directive::kMin);
  EXPECT_FALSE(stmt.limit.has_value());
}

TEST(SqlParser, MaxIsDefaultDirective) {
  SelectStatement stmt = MustParse("SELECT * FROM t SKYLINE OF a, b MIN, c");
  ASSERT_EQ(stmt.skyline.size(), 3u);
  EXPECT_EQ(stmt.skyline[0].directive, Directive::kMax);
  EXPECT_EQ(stmt.skyline[1].directive, Directive::kMin);
  EXPECT_EQ(stmt.skyline[2].directive, Directive::kMax);
}

TEST(SqlParser, DiffDirective) {
  SelectStatement stmt = MustParse("SELECT * FROM t SKYLINE OF city DIFF, p MIN");
  EXPECT_EQ(stmt.skyline[0].directive, Directive::kDiff);
}

TEST(SqlParser, ColumnList) {
  SelectStatement stmt = MustParse("SELECT name, price FROM t");
  EXPECT_EQ(stmt.columns,
            (std::vector<std::string>{"name", "price"}));
}

TEST(SqlParser, WherePredicates) {
  SelectStatement stmt = MustParse(
      "SELECT * FROM t WHERE price <= 250 AND city = 'York' AND stars > 2");
  ASSERT_EQ(stmt.predicates.size(), 3u);
  EXPECT_EQ(stmt.predicates[0].column, "price");
  EXPECT_EQ(stmt.predicates[0].op, CompareOp::kLe);
  EXPECT_EQ(std::get<double>(stmt.predicates[0].literal), 250.0);
  EXPECT_EQ(stmt.predicates[1].column, "city");
  EXPECT_EQ(stmt.predicates[1].op, CompareOp::kEq);
  EXPECT_EQ(std::get<std::string>(stmt.predicates[1].literal), "York");
  EXPECT_EQ(stmt.predicates[2].op, CompareOp::kGt);
}

TEST(SqlParser, LiteralOnLeftFlipsOperator) {
  SelectStatement stmt = MustParse("SELECT * FROM t WHERE 100 >= price");
  ASSERT_EQ(stmt.predicates.size(), 1u);
  EXPECT_EQ(stmt.predicates[0].column, "price");
  EXPECT_EQ(stmt.predicates[0].op, CompareOp::kLe);
  EXPECT_EQ(std::get<double>(stmt.predicates[0].literal), 100.0);
}

TEST(SqlParser, Limit) {
  SelectStatement stmt = MustParse("SELECT * FROM t LIMIT 10");
  ASSERT_TRUE(stmt.limit.has_value());
  EXPECT_EQ(*stmt.limit, 10u);
}

TEST(SqlParser, FullStatement) {
  SelectStatement stmt = MustParse(
      "SELECT name FROM hotels WHERE price < 300 "
      "SKYLINE OF rating MAX, price MIN LIMIT 5");
  EXPECT_EQ(stmt.columns, (std::vector<std::string>{"name"}));
  EXPECT_EQ(stmt.table, "hotels");
  EXPECT_EQ(stmt.predicates.size(), 1u);
  EXPECT_EQ(stmt.skyline.size(), 2u);
  EXPECT_EQ(*stmt.limit, 5u);
}

TEST(SqlParser, SyntaxErrors) {
  EXPECT_TRUE(ParseSql("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT * FROM").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT * FROM t SKYLINE").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT * FROM t SKYLINE OF").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseSql("SELECT * FROM t WHERE price").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseSql("SELECT * FROM t WHERE price <").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT * FROM t LIMIT").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT * FROM t LIMIT -3").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseSql("SELECT * FROM t LIMIT 2.5").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT * FROM t garbage").status().IsInvalidArgument());
}

TEST(SqlParser, ErrorMessagesCarryOffset) {
  auto result = ParseSql("SELECT * FROM t WHERE price <");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("offset"), std::string::npos);
}

TEST(SqlParser, LimitZeroAllowed) {
  SelectStatement stmt = MustParse("SELECT * FROM t LIMIT 0");
  EXPECT_EQ(*stmt.limit, 0u);
}


TEST(SqlParser, OrderBy) {
  SelectStatement stmt =
      MustParse("SELECT * FROM t ORDER BY price, rating DESC, name ASC");
  ASSERT_EQ(stmt.order_by.size(), 3u);
  EXPECT_EQ(stmt.order_by[0].column, "price");
  EXPECT_FALSE(stmt.order_by[0].descending);
  EXPECT_EQ(stmt.order_by[1].column, "rating");
  EXPECT_TRUE(stmt.order_by[1].descending);
  EXPECT_EQ(stmt.order_by[2].column, "name");
  EXPECT_FALSE(stmt.order_by[2].descending);
}

TEST(SqlParser, OrderByAfterSkylineBeforeLimit) {
  SelectStatement stmt = MustParse(
      "SELECT * FROM t SKYLINE OF a MAX ORDER BY b DESC LIMIT 3");
  EXPECT_EQ(stmt.skyline.size(), 1u);
  EXPECT_EQ(stmt.order_by.size(), 1u);
  EXPECT_EQ(*stmt.limit, 3u);
}

TEST(SqlParser, OrderBySyntaxErrors) {
  EXPECT_TRUE(ParseSql("SELECT * FROM t ORDER price").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("SELECT * FROM t ORDER BY").status().IsInvalidArgument());
}

TEST(SqlParser, ExplainPrefix) {
  SelectStatement plain = MustParse("SELECT * FROM t SKYLINE OF a, b MIN");
  EXPECT_EQ(plain.explain, ExplainMode::kNone);

  SelectStatement explain =
      MustParse("EXPLAIN SELECT * FROM t SKYLINE OF a, b MIN");
  EXPECT_EQ(explain.explain, ExplainMode::kPlan);
  EXPECT_EQ(explain.table, "t");
  ASSERT_EQ(explain.skyline.size(), 2u);

  SelectStatement analyze =
      MustParse("explain analyze select p FROM t WHERE p < 9 "
                "SKYLINE OF a MAX LIMIT 2");
  EXPECT_EQ(analyze.explain, ExplainMode::kAnalyze);
  EXPECT_EQ(analyze.table, "t");
  EXPECT_EQ(analyze.predicates.size(), 1u);
  ASSERT_TRUE(analyze.limit.has_value());
  EXPECT_EQ(*analyze.limit, 2u);
}

TEST(SqlParser, InsertValues) {
  auto result = ParseSql(
      "INSERT INTO hotels VALUES ('Ritz', 5, 450.0), ('Hostel', 2, 25)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto* insert = std::get_if<InsertStatement>(&result.value());
  ASSERT_NE(insert, nullptr);
  EXPECT_EQ(insert->table, "hotels");
  ASSERT_EQ(insert->rows.size(), 2u);
  ASSERT_EQ(insert->rows[0].size(), 3u);
  EXPECT_EQ(std::get<std::string>(insert->rows[0][0]), "Ritz");
  EXPECT_EQ(std::get<double>(insert->rows[0][1]), 5.0);
  EXPECT_EQ(std::get<double>(insert->rows[0][2]), 450.0);
  EXPECT_EQ(std::get<double>(insert->rows[1][2]), 25.0);
}

TEST(SqlParser, InsertNegativeNumbers) {
  auto result = ParseSql("insert into t values (-3, -2.5)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& insert = std::get<InsertStatement>(result.value());
  EXPECT_EQ(std::get<double>(insert.rows[0][0]), -3.0);
  EXPECT_EQ(std::get<double>(insert.rows[0][1]), -2.5);
}

TEST(SqlParser, DeleteWithAndWithoutWhere) {
  auto all = ParseSql("DELETE FROM stale");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  const auto& del_all = std::get<DeleteStatement>(all.value());
  EXPECT_EQ(del_all.table, "stale");
  EXPECT_TRUE(del_all.predicates.empty());

  auto some = ParseSql(
      "DELETE FROM hotels WHERE price > 400 AND city = 'York'");
  ASSERT_TRUE(some.ok()) << some.status().ToString();
  const auto& del_some = std::get<DeleteStatement>(some.value());
  ASSERT_EQ(del_some.predicates.size(), 2u);
  EXPECT_EQ(del_some.predicates[0].column, "price");
  EXPECT_EQ(del_some.predicates[0].op, CompareOp::kGt);
  EXPECT_EQ(std::get<std::string>(del_some.predicates[1].literal), "York");
}

TEST(SqlParser, WriteStatementSyntaxErrors) {
  EXPECT_TRUE(ParseSql("INSERT").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("INSERT INTO t").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("INSERT INTO t VALUES").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseSql("INSERT INTO t VALUES ()").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseSql("INSERT INTO t VALUES (1,)").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseSql("INSERT INTO t VALUES (1) garbage").status()
          .IsInvalidArgument());
  EXPECT_TRUE(ParseSql("DELETE").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("DELETE FROM").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseSql("DELETE FROM t WHERE").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("DELETE t").status().IsInvalidArgument());
}

TEST(SqlParser, ParseSelectRejectsWrites) {
  auto result = ParseSelect("INSERT INTO t VALUES (1)");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_FALSE(ParseSelect("DELETE FROM t").ok());
}

TEST(SqlParser, ExplainErrors) {
  // EXPLAIN must be followed by a (possibly ANALYZE-prefixed) SELECT.
  EXPECT_TRUE(ParseSql("EXPLAIN").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSql("EXPLAIN ANALYZE").status().IsInvalidArgument());
  // ANALYZE alone is not a statement: the prefix is EXPLAIN [ANALYZE].
  EXPECT_TRUE(
      ParseSql("ANALYZE SELECT * FROM t").status().IsInvalidArgument());
}

}  // namespace
}  // namespace skyline
