#include "common/status.h"

#include "gtest/gtest.h"

namespace skyline {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, FactoryConstructorsSetCodeAndMessage) {
  Status st = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad arg");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad arg");
}

TEST(Status, AllCodePredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(Status, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("f"), Status::NotFound("f"));
  EXPECT_FALSE(Status::NotFound("f") == Status::NotFound("g"));
  EXPECT_FALSE(Status::NotFound("f") == Status::IoError("f"));
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(Result, OkStatusNormalizedToInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(Result, MutableAccess) {
  Result<std::string> r = std::string("a");
  r.value() += "b";
  EXPECT_EQ(*r, "ab");
  r->append("c");
  EXPECT_EQ(*r, "abc");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  SKYLINE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_TRUE(UseReturnIfError(-1).IsInvalidArgument());
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> UseAssignOrReturn(int x) {
  SKYLINE_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return half + 1;
}

TEST(StatusMacros, AssignOrReturnPropagates) {
  Result<int> good = UseAssignOrReturn(4);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 3);
  Result<int> bad = UseAssignOrReturn(3);
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

}  // namespace
}  // namespace skyline
