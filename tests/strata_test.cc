#include "core/strata.h"

#include "core/dominance.h"
#include "core/naive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;
using testing_util::ReadAll;
using testing_util::RowMultiset;

class StrataTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

SkylineSpec MaxSpec(const Table& t, int dims) {
  std::vector<Criterion> criteria;
  for (int i = 0; i < dims; ++i) {
    criteria.push_back({"a" + std::to_string(i), Directive::kMax});
  }
  auto result = SkylineSpec::Make(t.schema(), std::move(criteria));
  SKYLINE_CHECK(result.ok());
  return std::move(result).value();
}

/// Oracle: iterated naive skyline (compute skyline, remove, repeat).
std::vector<std::multiset<std::string>> OracleStrata(const Table& t,
                                                     const SkylineSpec& spec,
                                                     size_t num_strata) {
  std::vector<char> rows = ReadAll(t);
  const size_t w = spec.schema().row_width();
  uint64_t count = t.row_count();
  std::vector<std::multiset<std::string>> strata;
  while (count > 0 && strata.size() < num_strata) {
    std::vector<uint64_t> sky = NaiveSkylineIndices(spec, rows.data(), count);
    std::multiset<std::string> layer;
    std::set<uint64_t> sky_set(sky.begin(), sky.end());
    std::vector<char> rest;
    for (uint64_t i = 0; i < count; ++i) {
      if (sky_set.count(i)) {
        layer.emplace(rows.data() + i * w, w);
      } else {
        rest.insert(rest.end(), rows.data() + i * w,
                    rows.data() + (i + 1) * w);
      }
    }
    strata.push_back(std::move(layer));
    rows = std::move(rest);
    count -= sky.size();
  }
  return strata;
}

TEST_F(StrataTest, ChainProducesOneStratumPerTuple) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{1, 1}, {2, 2}, {3, 3}}));
  SkylineSpec spec = MaxSpec(t, 2);
  StrataOptions opts;
  opts.num_strata = 3;
  StrataStats stats;
  ASSERT_OK_AND_ASSIGN(std::vector<Table> strata,
                       ComputeStrataSfs(t, spec, opts, ExecContext(), "out", &stats));
  ASSERT_EQ(strata.size(), 3u);
  EXPECT_EQ(strata[0].row_count(), 1u);
  EXPECT_EQ(strata[1].row_count(), 1u);
  EXPECT_EQ(strata[2].row_count(), 1u);
  std::vector<char> s0 = ReadAll(strata[0]);
  EXPECT_EQ(RowView(&t.schema(), s0.data()).GetInt32(0), 3);
  EXPECT_EQ(stats.stratum_sizes, (std::vector<uint64_t>{1, 1, 1}));
}

TEST_F(StrataTest, MatchesOracleOnRandomData) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 1200, 3, 31));
  SkylineSpec spec = MaxSpec(t, 3);
  StrataOptions opts;
  opts.num_strata = 4;
  ASSERT_OK_AND_ASSIGN(std::vector<Table> strata,
                       ComputeStrataSfs(t, spec, opts, ExecContext(), "out", nullptr));
  auto oracle = OracleStrata(t, spec, 4);
  ASSERT_EQ(strata.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    std::vector<char> rows = ReadAll(strata[i]);
    EXPECT_EQ(RowMultiset(rows.data(), strata[i].row_count(),
                          t.schema().row_width()),
              oracle[i])
        << "stratum " << i;
  }
}

TEST_F(StrataTest, NestedPresortAgrees) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 800, 3, 32));
  SkylineSpec spec = MaxSpec(t, 3);
  StrataOptions opts;
  opts.num_strata = 3;
  opts.presort = Presort::kNested;
  opts.use_projection = false;
  ASSERT_OK_AND_ASSIGN(std::vector<Table> strata,
                       ComputeStrataSfs(t, spec, opts, ExecContext(), "out", nullptr));
  auto oracle = OracleStrata(t, spec, 3);
  for (size_t i = 0; i < 3; ++i) {
    std::vector<char> rows = ReadAll(strata[i]);
    EXPECT_EQ(RowMultiset(rows.data(), strata[i].row_count(),
                          t.schema().row_width()),
              oracle[i]);
  }
}

TEST_F(StrataTest, StrataAreDisjointAndOrdered) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 600, 4, 33));
  SkylineSpec spec = MaxSpec(t, 4);
  StrataOptions opts;
  opts.num_strata = 3;
  ASSERT_OK_AND_ASSIGN(std::vector<Table> strata,
                       ComputeStrataSfs(t, spec, opts, ExecContext(), "out", nullptr));
  // Every stratum-1 tuple must be dominated by some stratum-0 tuple and no
  // stratum-0 tuple is dominated by anything in the input.
  std::vector<char> s0 = ReadAll(strata[0]);
  std::vector<char> s1 = ReadAll(strata[1]);
  const size_t w = t.schema().row_width();
  for (uint64_t i = 0; i < strata[1].row_count(); ++i) {
    bool dominated = false;
    for (uint64_t j = 0; j < strata[0].row_count() && !dominated; ++j) {
      dominated = Dominates(spec, s0.data() + j * w, s1.data() + i * w);
    }
    EXPECT_TRUE(dominated) << "stratum-1 tuple " << i
                           << " not dominated by stratum 0";
  }
}

TEST_F(StrataTest, WindowOverflowReportsResourceExhausted) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 3000, 7, 34));
  SkylineSpec spec = MaxSpec(t, 7);
  StrataOptions opts;
  opts.num_strata = 2;
  opts.window_pages = 1;
  opts.use_projection = false;  // 40 entries per window: will overflow
  auto result = ComputeStrataSfs(t, spec, opts, ExecContext(), "out", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
}

TEST_F(StrataTest, IterativeLabellerMatchesMultiWindow) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 1000, 3, 35));
  SkylineSpec spec = MaxSpec(t, 3);
  StrataOptions mw_opts;
  mw_opts.num_strata = 3;
  ASSERT_OK_AND_ASSIGN(std::vector<Table> mw,
                       ComputeStrataSfs(t, spec, mw_opts, ExecContext(), "mw", nullptr));
  StrataStats it_stats;
  ASSERT_OK_AND_ASSIGN(
      std::vector<Table> it,
      LabelStrataIterative(t, spec, SfsOptions{}, ExecContext(), 3, "it", &it_stats));
  ASSERT_EQ(it.size(), 3u);
  const size_t w = t.schema().row_width();
  for (size_t i = 0; i < 3; ++i) {
    std::vector<char> a = ReadAll(mw[i]);
    std::vector<char> b = ReadAll(it[i]);
    EXPECT_EQ(RowMultiset(a.data(), mw[i].row_count(), w),
              RowMultiset(b.data(), it[i].row_count(), w))
        << "stratum " << i;
  }
  EXPECT_EQ(it_stats.stratum_sizes.size(), 3u);
}

TEST_F(StrataTest, IterativeLabellerExhaustsInput) {
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2, {{1, 1}, {2, 2}, {3, 3}}));
  SkylineSpec spec = MaxSpec(t, 2);
  ASSERT_OK_AND_ASSIGN(
      std::vector<Table> strata,
      LabelStrataIterative(t, spec, SfsOptions{}, ExecContext(), 0, "out", nullptr));
  ASSERT_EQ(strata.size(), 3u);
  uint64_t total = 0;
  for (const auto& s : strata) total += s.row_count();
  EXPECT_EQ(total, 3u);
}

TEST_F(StrataTest, IterativeLabellerHandlesTinyWindows) {
  // Unlike the multi-window variant, the iterative labeller tolerates
  // windows smaller than a stratum (it just takes extra passes).
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 1500, 5, 36));
  SkylineSpec spec = MaxSpec(t, 5);
  SfsOptions sfs;
  sfs.window_pages = 1;
  sfs.use_projection = false;
  ASSERT_OK_AND_ASSIGN(std::vector<Table> strata,
                       LabelStrataIterative(t, spec, sfs, ExecContext(), 2,
                                            "out", nullptr));
  auto oracle = OracleStrata(t, spec, 2);
  const size_t w = t.schema().row_width();
  for (size_t i = 0; i < 2; ++i) {
    std::vector<char> rows = ReadAll(strata[i]);
    EXPECT_EQ(RowMultiset(rows.data(), strata[i].row_count(), w), oracle[i]);
  }
}

TEST_F(StrataTest, ZeroStrataRejected) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{1, 1}}));
  SkylineSpec spec = MaxSpec(t, 2);
  StrataOptions opts;
  opts.num_strata = 0;
  EXPECT_TRUE(ComputeStrataSfs(t, spec, opts, ExecContext(), "out", nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(StrataTest, StratumZeroEqualsSkyline) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 900, 4, 37));
  SkylineSpec spec = MaxSpec(t, 4);
  StrataOptions opts;
  opts.num_strata = 1;
  ASSERT_OK_AND_ASSIGN(std::vector<Table> strata,
                       ComputeStrataSfs(t, spec, opts, ExecContext(), "out", nullptr));
  std::vector<char> rows = ReadAll(strata[0]);
  EXPECT_EQ(RowMultiset(rows.data(), strata[0].row_count(),
                        t.schema().row_width()),
            testing_util::OracleSkylineMultiset(t, spec));
}

}  // namespace
}  // namespace skyline
