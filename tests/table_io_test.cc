#include "relation/table_io.h"

#include <unistd.h>

#include "core/sfs.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeUniformTable;

TEST(TableIo, RoundTripPreservesSchemaAndStats) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table guide, MakeGoodEatsTable(env.get(), "g"));
  ASSERT_OK(SaveTableMetadata(guide, "g.meta"));
  ASSERT_OK_AND_ASSIGN(Table reopened,
                       OpenTableWithMetadata(env.get(), "g", "g.meta"));
  EXPECT_TRUE(reopened.schema().Equals(guide.schema()));
  EXPECT_EQ(reopened.row_count(), guide.row_count());
  for (size_t c = 0; c < guide.schema().num_columns(); ++c) {
    EXPECT_EQ(reopened.stats(c).valid, guide.stats(c).valid) << c;
    if (guide.stats(c).valid) {
      EXPECT_DOUBLE_EQ(reopened.stats(c).min, guide.stats(c).min) << c;
      EXPECT_DOUBLE_EQ(reopened.stats(c).max, guide.stats(c).max) << c;
    }
  }
  EXPECT_EQ(testing_util::ReadAll(reopened), testing_util::ReadAll(guide));
}

TEST(TableIo, ReopenedTableRunsSkyline) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env.get(), "t", 1000, 3, 601));
  ASSERT_OK(SaveTableMetadata(t, "t.meta"));
  ASSERT_OK_AND_ASSIGN(Table reopened,
                       OpenTableWithMetadata(env.get(), "t", "t.meta"));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(reopened.schema(), {{"a0", Directive::kMax},
                                            {"a1", Directive::kMax},
                                            {"a2", Directive::kMax}}));
  // Entropy presort needs the persisted stats; identical results prove
  // they survived.
  ASSERT_OK_AND_ASSIGN(
      Table sky1, ComputeSkylineSfs(t, spec, SfsOptions{}, ExecContext(), "s1",
                                    nullptr));
  ASSERT_OK_AND_ASSIGN(
      Table sky2, ComputeSkylineSfs(reopened, spec, SfsOptions{},
                                    ExecContext(), "s2", nullptr));
  EXPECT_EQ(testing_util::ReadAll(sky1), testing_util::ReadAll(sky2));
}

TEST(TableIo, SurvivesProcessRestartViaPosixEnv) {
  // The real use: write with one Env instance, reopen with a fresh one.
  const std::string dir = ::testing::TempDir();
  const std::string table_path =
      dir + "skyline_tio_" + std::to_string(::getpid());
  const std::string meta_path = table_path + ".meta";
  {
    auto env = NewPosixEnv();
    ASSERT_OK_AND_ASSIGN(Table t,
                         MakeUniformTable(env.get(), table_path, 500, 2, 602));
    ASSERT_OK(SaveTableMetadata(t, meta_path));
  }
  {
    auto env = NewPosixEnv();
    ASSERT_OK_AND_ASSIGN(
        Table t, OpenTableWithMetadata(env.get(), table_path, meta_path));
    EXPECT_EQ(t.row_count(), 500u);
    EXPECT_EQ(t.schema().num_columns(), 3u);  // a0, a1, payload
    ASSERT_OK(env->DeleteFile(table_path));
    ASSERT_OK(env->DeleteFile(meta_path));
  }
}

TEST(TableIo, ColumnNamesWithSpaces) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(
      Schema schema, Schema::Make({ColumnDef::Int32("price per night"),
                                   ColumnDef::FixedString("hotel name", 12)}));
  TableBuilder builder(env.get(), "t", schema);
  ASSERT_OK(builder.Open());
  RowBuffer row(&builder.schema());
  row.SetInt32(0, 42);
  row.SetString(1, "x");
  ASSERT_OK(builder.Append(row));
  ASSERT_OK_AND_ASSIGN(Table t, builder.Finish());
  ASSERT_OK(SaveTableMetadata(t, "t.meta"));
  ASSERT_OK_AND_ASSIGN(Table reopened,
                       OpenTableWithMetadata(env.get(), "t", "t.meta"));
  EXPECT_EQ(reopened.schema().column(0).name, "price per night");
  EXPECT_EQ(reopened.schema().column(1).name, "hotel name");
}

TEST(TableIo, CorruptionDetected) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env.get(), "t", 10, 2, 603));
  ASSERT_OK(SaveTableMetadata(t, "t.meta"));

  auto write_file = [&](const std::string& path, const std::string& content) {
    std::unique_ptr<WritableFile> f;
    SKYLINE_CHECK_OK(env->NewWritableFile(path, &f));
    SKYLINE_CHECK_OK(f->Append(content.data(), content.size()));
    SKYLINE_CHECK_OK(f->Close());
  };

  write_file("bad1", "not a metadata file\n");
  EXPECT_TRUE(
      OpenTableWithMetadata(env.get(), "t", "bad1").status().IsCorruption());
  write_file("bad2", "skyline_table v1\nbogus line here\n");
  EXPECT_TRUE(
      OpenTableWithMetadata(env.get(), "t", "bad2").status().IsCorruption());
  write_file("bad3", "skyline_table v1\ncolumn int32 0 a\n");  // missing stats
  EXPECT_TRUE(
      OpenTableWithMetadata(env.get(), "t", "bad3").status().IsCorruption());
  EXPECT_TRUE(OpenTableWithMetadata(env.get(), "t", "missing.meta")
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace skyline
