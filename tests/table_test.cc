#include "relation/table.h"

#include "gtest/gtest.h"
#include "relation/generator.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;

TEST(Table, BuildAndScan) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env.get(), "t", 2, {{1, 2}, {3, 4}, {5, 6}}));
  EXPECT_EQ(t.row_count(), 3u);
  auto reader = t.NewReader(nullptr);
  int expected = 1;
  while (const char* row = reader->Next()) {
    RowView view(&t.schema(), row);
    EXPECT_EQ(view.GetInt32(0), expected);
    EXPECT_EQ(view.GetInt32(1), expected + 1);
    expected += 2;
  }
  EXPECT_EQ(expected, 7);
}

TEST(Table, StatsTrackMinMax) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env.get(), "t", 2, {{5, -3}, {-7, 10}, {2, 0}}));
  EXPECT_TRUE(t.stats(0).valid);
  EXPECT_EQ(t.stats(0).min, -7.0);
  EXPECT_EQ(t.stats(0).max, 5.0);
  EXPECT_EQ(t.stats(1).min, -3.0);
  EXPECT_EQ(t.stats(1).max, 10.0);
}

TEST(Table, StringColumnStatsInvalid) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeGoodEatsTable(env.get(), "g"));
  EXPECT_FALSE(t.stats(0).valid);  // restaurant name
  EXPECT_TRUE(t.stats(1).valid);   // S
}

TEST(Table, EmptyTable) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env.get(), "t", 1, {}));
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_FALSE(t.stats(0).valid);
  std::vector<char> rows;
  ASSERT_OK(t.ReadAllRows(&rows));
  EXPECT_TRUE(rows.empty());
}

TEST(Table, ReadAllRows) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t,
                       MakeIntTable(env.get(), "t", 1, {{10}, {20}, {30}}));
  std::vector<char> rows;
  ASSERT_OK(t.ReadAllRows(&rows));
  ASSERT_EQ(rows.size(), 3 * t.schema().row_width());
  RowView second(&t.schema(), rows.data() + t.schema().row_width());
  EXPECT_EQ(second.GetInt32(0), 20);
}

TEST(Table, PageCount) {
  auto env = NewMemEnv();
  std::vector<std::vector<int32_t>> rows(2100, {1});  // 4-byte rows, 1024/page
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env.get(), "t", 1, rows));
  EXPECT_EQ(t.page_count(), 3u);
}

TEST(Table, AttachWrapsExistingFile) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t,
                       MakeIntTable(env.get(), "t", 2, {{1, 2}, {3, 4}}));
  std::vector<ColumnStats> stats = {t.stats(0), t.stats(1)};
  ASSERT_OK_AND_ASSIGN(Table attached,
                       Table::Attach(t.schema(), env.get(), "t", stats));
  EXPECT_EQ(attached.row_count(), 2u);
  std::vector<char> rows;
  ASSERT_OK(attached.ReadAllRows(&rows));
  RowView view(&attached.schema(), rows.data());
  EXPECT_EQ(view.GetInt32(0), 1);
}

TEST(Table, AttachMissingFileFails) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Schema schema, Schema::Make({ColumnDef::Int32("x")}));
  EXPECT_TRUE(Table::Attach(schema, env.get(), "missing", {ColumnStats{}})
                  .status()
                  .IsNotFound());
}

TEST(Table, AttachStatsSizeMismatchFails) {
  auto env = NewMemEnv();
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env.get(), "t", 1, {{1}}));
  EXPECT_TRUE(
      Table::Attach(t.schema(), env.get(), "t", {}).status().IsInvalidArgument());
}

TEST(TableBuilder, ReaderCountsIo) {
  auto env = NewMemEnv();
  std::vector<std::vector<int32_t>> rows(3000, {7});
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env.get(), "t", 1, rows));
  IoStats io;
  auto reader = t.NewReader(&io);
  while (reader->Next() != nullptr) {
  }
  EXPECT_EQ(io.pages_read, t.page_count());
}

}  // namespace
}  // namespace skyline
