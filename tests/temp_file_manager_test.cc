#include "storage/temp_file_manager.h"

#include <memory>
#include <set>

#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

TEST(TempFileManager, AllocatesUniquePaths) {
  auto env = NewMemEnv();
  TempFileManager tmp(env.get(), "pfx");
  std::set<std::string> paths;
  for (int i = 0; i < 10; ++i) paths.insert(tmp.Allocate("tag"));
  EXPECT_EQ(paths.size(), 10u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.find("pfx"), 0u);
    EXPECT_NE(p.find("tag"), std::string::npos);
  }
}

TEST(TempFileManager, DeleteAllRemovesCreatedFiles) {
  auto env = NewMemEnv();
  TempFileManager tmp(env.get(), "pfx");
  std::string p1 = tmp.Allocate("a");
  std::string p2 = tmp.Allocate("b");
  std::unique_ptr<WritableFile> w;
  ASSERT_OK(env->NewWritableFile(p1, &w));
  ASSERT_OK(w->Close());
  ASSERT_OK(env->NewWritableFile(p2, &w));
  ASSERT_OK(w->Close());
  tmp.DeleteAll();
  EXPECT_FALSE(env->FileExists(p1));
  EXPECT_FALSE(env->FileExists(p2));
  EXPECT_EQ(tmp.allocated_count(), 0u);
}

TEST(TempFileManager, DestructorCleansUp) {
  auto env = NewMemEnv();
  std::string path;
  {
    TempFileManager tmp(env.get(), "pfx");
    path = tmp.Allocate("x");
    std::unique_ptr<WritableFile> w;
    ASSERT_OK(env->NewWritableFile(path, &w));
    ASSERT_OK(w->Close());
    EXPECT_TRUE(env->FileExists(path));
  }
  EXPECT_FALSE(env->FileExists(path));
}

TEST(TempFileManager, DeleteSingle) {
  auto env = NewMemEnv();
  TempFileManager tmp(env.get(), "pfx");
  std::string p = tmp.Allocate("y");
  std::unique_ptr<WritableFile> w;
  ASSERT_OK(env->NewWritableFile(p, &w));
  ASSERT_OK(w->Close());
  tmp.Delete(p);
  EXPECT_FALSE(env->FileExists(p));
  EXPECT_EQ(tmp.allocated_count(), 0u);
  // Deleting a path that was never materialized is harmless.
  tmp.Delete(tmp.Allocate("z"));
}

}  // namespace
}  // namespace skyline
