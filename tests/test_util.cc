#include "test_util.h"

namespace skyline {
namespace testing_util {

Result<Table> MakeIntTable(Env* env, const std::string& path, int num_attrs,
                           const std::vector<std::vector<int32_t>>& rows) {
  std::vector<ColumnDef> columns;
  for (int i = 0; i < num_attrs; ++i) {
    columns.push_back(ColumnDef::Int32("a" + std::to_string(i)));
  }
  SKYLINE_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(columns)));
  TableBuilder builder(env, path, schema);
  SKYLINE_RETURN_IF_ERROR(builder.Open());
  RowBuffer row(&builder.schema());
  for (const auto& values : rows) {
    SKYLINE_CHECK_EQ(values.size(), static_cast<size_t>(num_attrs));
    for (int i = 0; i < num_attrs; ++i) {
      row.SetInt32(static_cast<size_t>(i), values[static_cast<size_t>(i)]);
    }
    SKYLINE_RETURN_IF_ERROR(builder.Append(row));
  }
  return builder.Finish();
}

std::vector<char> ReadAll(const Table& table) {
  std::vector<char> rows;
  SKYLINE_CHECK_OK(table.ReadAllRows(&rows));
  return rows;
}

std::multiset<std::string> ProjectedMultiset(const SkylineSpec& spec,
                                             const char* rows, uint64_t count,
                                             size_t row_width) {
  std::multiset<std::string> out;
  std::vector<char> proj(spec.projected_schema().row_width());
  for (uint64_t i = 0; i < count; ++i) {
    spec.ProjectRow(rows + i * row_width, proj.data());
    out.emplace(proj.data(), proj.size());
  }
  return out;
}

std::multiset<std::string> RowMultiset(const char* rows, uint64_t count,
                                       size_t row_width) {
  std::multiset<std::string> out;
  for (uint64_t i = 0; i < count; ++i) {
    out.emplace(rows + i * row_width, row_width);
  }
  return out;
}

std::multiset<std::string> OracleSkylineMultiset(const Table& table,
                                                 const SkylineSpec& spec) {
  auto result = NaiveSkylineRows(table, spec);
  SKYLINE_CHECK(result.ok()) << result.status().ToString();
  const size_t width = spec.schema().row_width();
  return RowMultiset(result.value().data(), result.value().size() / width,
                     width);
}

Result<Table> MakeUniformTable(Env* env, const std::string& path, uint64_t n,
                               int num_attrs, uint64_t seed,
                               size_t payload_bytes) {
  GeneratorOptions options;
  options.num_rows = n;
  options.num_attributes = num_attrs;
  options.payload_bytes = payload_bytes;
  options.seed = seed;
  return GenerateTable(env, path, options);
}

}  // namespace testing_util
}  // namespace skyline
