#ifndef SKYLINE_TESTS_TEST_UTIL_H_
#define SKYLINE_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/skyline.h"
#include "env/env.h"
#include "gtest/gtest.h"

namespace skyline {
namespace testing_util {

/// gtest helpers for Status / Result.
#define ASSERT_OK(expr)                                     \
  do {                                                      \
    const ::skyline::Status _st = (expr);                   \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                \
  } while (0)

#define EXPECT_OK(expr)                                     \
  do {                                                      \
    const ::skyline::Status _st = (expr);                   \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                     \
  ASSERT_OK_AND_ASSIGN_IMPL_(                               \
      SKYLINE_STATUS_CONCAT_(_res_, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, expr)          \
  auto tmp = (expr);                                        \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();         \
  lhs = std::move(tmp).value()

/// Builds a small table of int32 attribute rows (schema a0..a{k-1}, no
/// payload) from a row-major value list. The table lives in `env`.
Result<Table> MakeIntTable(Env* env, const std::string& path, int num_attrs,
                           const std::vector<std::vector<int32_t>>& rows);

/// Reads every row of `table` into a dense buffer.
std::vector<char> ReadAll(const Table& table);

/// Multiset of the rows' projections onto the spec's skyline attributes,
/// encoded as byte strings — used to compare algorithm outputs order-
/// insensitively (payloads of equivalent tuples may legitimately differ in
/// *membership order* but the attribute multiset must match exactly).
std::multiset<std::string> ProjectedMultiset(const SkylineSpec& spec,
                                             const char* rows, uint64_t count,
                                             size_t row_width);

/// Full-row multiset (byte-exact), order-insensitive.
std::multiset<std::string> RowMultiset(const char* rows, uint64_t count,
                                       size_t row_width);

/// Computes the naive-oracle skyline of `table` and returns its full-row
/// multiset.
std::multiset<std::string> OracleSkylineMultiset(const Table& table,
                                                 const SkylineSpec& spec);

/// Generator shorthand: uniform-independent int32 table.
Result<Table> MakeUniformTable(Env* env, const std::string& path, uint64_t n,
                               int num_attrs, uint64_t seed,
                               size_t payload_bytes = 12);

}  // namespace testing_util
}  // namespace skyline

#endif  // SKYLINE_TESTS_TEST_UTIL_H_
