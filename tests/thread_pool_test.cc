#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace skyline {
namespace {

TEST(ThreadPoolTest, SubmitRunsTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, NestedSubmitDoesNotDeadlock) {
  // A task submits another task without waiting on it; with one worker
  // this only terminates if submission never blocks.
  ThreadPool pool(1);
  std::promise<int> inner_done;
  std::future<int> inner = inner_done.get_future();
  pool.Submit([&pool, &inner_done] {
        pool.Submit([&inner_done] { inner_done.set_value(42); });
      })
      .get();
  EXPECT_EQ(inner.get(), 42);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(ResolveThreadCount(0), 1u);  // hardware concurrency, >= 1
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(6), 6u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelFor(&pool, kCount, [&hits](size_t i) { hits[i]++; },
              /*grain=*/64);
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ClampThreadsTest, CapsRequestsAtHardware) {
  EXPECT_EQ(ClampThreads(8, 4), 4u);   // oversubscription capped
  EXPECT_EQ(ClampThreads(3, 4), 3u);   // within budget: taken literally
  EXPECT_EQ(ClampThreads(4, 4), 4u);
  EXPECT_EQ(ClampThreads(16, 1), 1u);  // 1-core host: always sequential
}

TEST(ClampThreadsTest, ZeroMeansOnePerHardwareThread) {
  EXPECT_EQ(ClampThreads(0, 6), 6u);
  EXPECT_EQ(ClampThreads(0, 1), 1u);
}

TEST(ClampThreadsTest, UnknownHardwareTreatedAsOne) {
  // hardware_concurrency() may report 0; the clamp must stay >= 1.
  EXPECT_EQ(ClampThreads(0, 0), 1u);
  EXPECT_EQ(ClampThreads(8, 0), 1u);
}

TEST(ClampThreadsTest, HardwareVariantAgreesWithPurePolicy) {
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(ClampThreadsToHardware(64), ClampThreads(64, hw));
  EXPECT_EQ(ClampThreadsToHardware(0), ClampThreads(0, hw));
  EXPECT_GE(ClampThreadsToHardware(0), 1u);
}

TEST(ParallelForTest, ZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelForTest, NullPoolRunsInline) {
  size_t sum = 0;
  ParallelFor(nullptr, 100, [&sum](size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, BusyTotalsAccumulateAcrossTasks) {
  ThreadPool pool(2);
  const ThreadPool::BusyTotals before = pool.Totals();
  EXPECT_EQ(before.busy_nanos, 0u);
  EXPECT_EQ(before.tasks_executed, 0u);

  std::vector<std::future<void>> futures;
  for (int t = 0; t < 8; ++t) {
    futures.push_back(pool.Submit([]() {
      // Busy-spin a little so the timed section is visibly non-zero even
      // on coarse clocks.
      volatile uint64_t x = 0;
      for (int i = 0; i < 50'000; ++i) x = x + i;
    }));
  }
  for (auto& f : futures) f.get();

  // The worker stamps the totals after the task's future resolves, so
  // allow the final increment a moment to land.
  auto settle = [&pool](uint64_t tasks) {
    ThreadPool::BusyTotals t = pool.Totals();
    for (int i = 0; i < 2000 && t.tasks_executed < tasks; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      t = pool.Totals();
    }
    return t;
  };
  const ThreadPool::BusyTotals after = settle(8);
  EXPECT_EQ(after.tasks_executed, 8u);
  EXPECT_GT(after.busy_nanos, before.busy_nanos);

  // Monotone: more work never decreases the totals.
  pool.Submit([]() {}).get();
  const ThreadPool::BusyTotals more = settle(9);
  EXPECT_EQ(more.tasks_executed, 9u);
  EXPECT_GE(more.busy_nanos, after.busy_nanos);
}

TEST(ParallelForTest, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 1000,
                  [](size_t i) {
                    if (i == 137) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, WorksFromInsideAPoolTask) {
  // Saturate a 2-thread pool with tasks that each run a nested
  // ParallelFor on the same pool; caller participation guarantees
  // completion even though no worker is free for helpers.
  ThreadPool pool(2);
  std::vector<std::future<size_t>> futures;
  for (int t = 0; t < 4; ++t) {
    futures.push_back(pool.Submit([&pool]() -> size_t {
      std::atomic<size_t> sum{0};
      ParallelFor(&pool, 1000, [&sum](size_t i) { sum += i; });
      return sum.load();
    }));
  }
  for (auto& f : futures) EXPECT_EQ(f.get(), 499'500u);
}

}  // namespace
}  // namespace skyline
