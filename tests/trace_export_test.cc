// Chrome/Perfetto trace export: TraceSink::ExportChromeTrace must emit a
// document chrome://tracing and ui.perfetto.dev can load. The tests parse
// the export with a minimal JSON reader (no external dependency) and
// validate the trace-event schema field by field, then drive a
// multi-threaded 100k-row parallel-SFS run and require spans from at least
// two distinct thread ids — the property that makes the export worth
// opening in a viewer at all.

#include <cctype>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/trace.h"
#include "core/scoring.h"
#include "core/sfs.h"
#include "core/sfs_parallel.h"
#include "gtest/gtest.h"
#include "sort/external_sort.h"
#include "relation/generator.h"
#include "storage/temp_file_manager.h"
#include "test_util.h"

namespace skyline {
namespace {

// ---- Minimal JSON reader -------------------------------------------------
// Just enough to schema-check the export: objects, arrays, strings,
// numbers, booleans, null. Parse failures surface as test failures via
// the `ok` flag and `error` message.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& why) {
    error_ = why + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (c == 't' || c == 'f') return ParseLiteral(out);
    if (c == 'n') return ParseLiteral(out);
    return ParseNumber(out);
  }

  bool ParseLiteral(JsonValue* out) {
    static const struct {
      const char* text;
      JsonValue::Kind kind;
      bool boolean;
    } kLiterals[] = {{"true", JsonValue::Kind::kBool, true},
                     {"false", JsonValue::Kind::kBool, false},
                     {"null", JsonValue::Kind::kNull, false}};
    for (const auto& lit : kLiterals) {
      const size_t len = std::strlen(lit.text);
      if (text_.compare(pos_, len, lit.text) == 0) {
        out->kind = lit.kind;
        out->boolean = lit.boolean;
        pos_ += len;
        return true;
      }
    }
    return Fail("bad literal");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("bad number");
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return Fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            // Decoded code points don't matter for schema checks; keep the
            // raw hex so the string is still comparable and non-empty.
            out->append("\\u");
            out->append(text_, pos_, 4);
            pos_ += 4;
            continue;
          }
          default:
            return Fail("bad escape");
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

JsonValue ParseOrDie(const std::string& text) {
  JsonValue doc;
  JsonReader reader(text);
  EXPECT_TRUE(reader.Parse(&doc)) << reader.error();
  return doc;
}

// Asserts the trace-event schema on one export and fills `x_tids` with
// the thread ids that recorded "X" (complete) events. Out-parameter form
// because gtest's ASSERT_* macros require a void function.
void ValidateChromeTrace(const JsonValue& doc, std::set<uint64_t>* x_tids) {
  EXPECT_TRUE(doc.is_object());
  const JsonValue* unit = doc.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr) << "missing displayTimeUnit";
  EXPECT_TRUE(unit->is_string());
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr) << "missing traceEvents";
  EXPECT_TRUE(events->is_array());

  std::set<uint64_t> metadata_tids;
  for (const JsonValue& event : events->array) {
    ASSERT_TRUE(event.is_object());
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_string());
    const JsonValue* name = event.Find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(name->is_string());
    const JsonValue* pid = event.Find("pid");
    ASSERT_NE(pid, nullptr);
    EXPECT_TRUE(pid->is_number());
    const JsonValue* tid = event.Find("tid");
    ASSERT_NE(tid, nullptr);
    ASSERT_TRUE(tid->is_number());
    if (ph->string == "M") {
      EXPECT_EQ(name->string, "thread_name");
      const JsonValue* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      const JsonValue* thread_name = args->Find("name");
      ASSERT_NE(thread_name, nullptr);
      EXPECT_TRUE(thread_name->is_string());
      EXPECT_FALSE(thread_name->string.empty());
      metadata_tids.insert(static_cast<uint64_t>(tid->number));
      continue;
    }
    ASSERT_EQ(ph->string, "X") << "unexpected event phase";
    EXPECT_FALSE(name->string.empty());
    const JsonValue* cat = event.Find("cat");
    ASSERT_NE(cat, nullptr);
    EXPECT_EQ(cat->string, "skyline");
    const JsonValue* ts = event.Find("ts");
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->is_number());
    EXPECT_GE(ts->number, 0.0);
    const JsonValue* dur = event.Find("dur");
    ASSERT_NE(dur, nullptr);
    ASSERT_TRUE(dur->is_number());
    EXPECT_GE(dur->number, 0.0);
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    const JsonValue* depth = args->Find("depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_TRUE(depth->is_number());
    x_tids->insert(static_cast<uint64_t>(tid->number));
  }
  // Every span thread has a thread_name metadata record, so viewers label
  // each timeline row.
  for (const uint64_t tid : *x_tids) {
    EXPECT_EQ(metadata_tids.count(tid), 1u) << "no thread_name for " << tid;
  }
}

class TraceExportTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

TEST_F(TraceExportTest, EmptySinkExportsValidEmptyDocument) {
  TraceSink sink;
  const JsonValue doc = ParseOrDie(sink.ExportChromeTrace());
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array.empty());
}

TEST_F(TraceExportTest, SingleThreadSpansRoundTrip) {
  TraceSink sink;
  {
    TraceSpan outer(&sink, "outer");
    TraceSpan inner(&sink, "inner", 7);
  }
  const std::string text = sink.ExportChromeTrace();
  const JsonValue doc = ParseOrDie(text);
  std::set<uint64_t> tids;
  ValidateChromeTrace(doc, &tids);
  EXPECT_EQ(tids.size(), 1u);

  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::map<std::string, const JsonValue*> by_name;
  for (const JsonValue& event : events->array) {
    if (event.Find("ph")->string == "X") {
      by_name[event.Find("name")->string] = &event;
    }
  }
  ASSERT_EQ(by_name.size(), 2u);
  ASSERT_EQ(by_name.count("outer"), 1u);
  ASSERT_EQ(by_name.count("inner-7"), 1u) << "suffix lost in export";
  // Nesting must survive: the inner span starts no earlier and carries
  // depth 1 under the outer span's depth 0.
  const JsonValue* outer = by_name["outer"];
  const JsonValue* inner = by_name["inner-7"];
  EXPECT_EQ(outer->Find("args")->Find("depth")->number, 0.0);
  EXPECT_EQ(inner->Find("args")->Find("depth")->number, 1.0);
  EXPECT_GE(inner->Find("ts")->number, outer->Find("ts")->number);
}

// The acceptance bar for the exporter: a 100k-row block-parallel SFS run
// with 4 workers must export a valid Chrome trace whose spans come from at
// least two distinct thread ids (the coordinating thread plus the pool
// workers), including the per-block "filter-block-<k>" worker spans.
TEST_F(TraceExportTest, ParallelRunExportsSpansFromMultipleThreads) {
  GeneratorOptions gen;
  gen.num_rows = 100000;
  gen.num_attributes = 5;
  gen.payload_bytes = 8;
  gen.distribution = Distribution::kAntiCorrelated;
  gen.seed = 20260808;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(env_.get(), "trace_t", gen));

  std::vector<Criterion> criteria;
  for (int i = 0; i < 5; ++i) {
    criteria.push_back({"a" + std::to_string(i),
                        i % 2 == 0 ? Directive::kMax : Directive::kMin});
  }
  ASSERT_OK_AND_ASSIGN(SkylineSpec spec,
                       SkylineSpec::Make(t.schema(), std::move(criteria)));

  TempFileManager temp_files(env_.get(), "trace_export");
  std::unique_ptr<RowOrdering> ordering = MakeNestedSkylineOrdering(spec);
  ASSERT_OK_AND_ASSIGN(
      std::string sorted,
      SortHeapFile(env_.get(), &temp_files, t.path(),
                   t.schema().row_width(), *ordering, SortOptions{},
                   ExecContext(),
                   nullptr));

  TraceSink sink;
  ExecContext ctx;
  ctx.trace = &sink;
  ParallelSfsOptions popt;
  popt.threads = 4;
  popt.min_block_rows = 1;
  popt.exec = &ctx;
  uint64_t rows_out = 0;
  SkylineRunStats stats;
  ASSERT_OK(ParallelSfsFilter(
      env_.get(), sorted, spec, popt,
      [&rows_out](const char*) {
        ++rows_out;
        return Status::OK();
      },
      &stats));
  ASSERT_GT(rows_out, 0u);
  ASSERT_EQ(stats.threads_used, 4u);

  const JsonValue doc = ParseOrDie(sink.ExportChromeTrace());
  std::set<uint64_t> tids;
  ValidateChromeTrace(doc, &tids);
  EXPECT_GE(tids.size(), 2u)
      << "expected spans from the coordinator and the pool workers";

  size_t filter_block_spans = 0;
  std::set<uint64_t> worker_tids;
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  for (const JsonValue& event : events->array) {
    if (event.Find("ph")->string != "X") continue;
    const std::string& name = event.Find("name")->string;
    if (name.rfind("filter-block-", 0) == 0) {
      ++filter_block_spans;
      worker_tids.insert(
          static_cast<uint64_t>(event.Find("tid")->number));
    }
  }
  EXPECT_EQ(filter_block_spans, 4u) << "one span per scheduled block";
  EXPECT_GE(worker_tids.size(), 2u)
      << "worker spans should land on distinct pool threads";
}

}  // namespace
}  // namespace skyline
