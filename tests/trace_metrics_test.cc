#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/run_report.h"
#include "gtest/gtest.h"

// Counting global allocator: the disabled-tracing contract is "a single
// branch, no clock read, no allocation", and the only way to pin the last
// part is to watch operator new. The count is process-wide, so tests that
// use it must not run concurrent allocating threads of their own.
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

// noinline keeps GCC from pairing the malloc/free inside with call-site
// new/delete and warning -Wmismatched-new-delete.
__attribute__((noinline)) void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
__attribute__((noinline)) void* operator new[](std::size_t size) {
  return ::operator new(size);
}
// The nothrow forms must be overridden too: the library's temporary
// buffers (std::stable_sort) allocate through them, and a mixed set —
// default nothrow new, custom delete below — is an alloc/dealloc
// mismatch under ASan.
__attribute__((noinline)) void* operator new(std::size_t size,
                                             const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
__attribute__((noinline)) void* operator new[](
    std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p,
                                               std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p,
                                                 std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(
    void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](
    void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace skyline {
namespace {

TEST(TraceTest, RecordsNestedSpansWithDepth) {
  TraceSink sink;
  {
    TraceSpan outer(&sink, "presort");
    {
      TraceSpan inner(&sink, "run-formation");
    }
  }
  const std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner span completes (and records) first.
  EXPECT_EQ(events[0].name_view(), "run-formation");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].name_view(), "presort");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_GE(events[1].duration_ns, events[0].duration_ns);
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
}

TEST(TraceTest, SuffixFormatsIntoName) {
  TraceSink sink;
  { TraceSpan span(&sink, "filter-pass", 3); }
  EXPECT_EQ(sink.CountSpans("filter-pass-3"), 1u);
  EXPECT_EQ(sink.CountSpans("filter-pass"), 0u);
}

TEST(TraceTest, EndIsIdempotent) {
  TraceSink sink;
  {
    TraceSpan span(&sink, "merge");
    span.End();
    span.End();
  }  // destructor must not record a second event
  EXPECT_EQ(sink.recorded(), 1u);
}

TEST(TraceTest, RingBufferKeepsNewestAndCountsDropped) {
  TraceSink sink(/*capacity=*/4);
  for (int i = 0; i < 7; ++i) {
    TraceSpan span(&sink, "span", i);
  }
  EXPECT_EQ(sink.recorded(), 7u);
  EXPECT_EQ(sink.dropped(), 3u);
  const std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first of the surviving (newest) events: span-3 .. span-6.
  EXPECT_EQ(events.front().name_view(), "span-3");
  EXPECT_EQ(events.back().name_view(), "span-6");
  sink.Clear();
  EXPECT_TRUE(sink.Snapshot().empty());
}

TEST(TraceTest, DisabledOrNullSinkRecordsNothingAndDoesNotAllocate) {
  TraceSink sink;
  sink.set_enabled(false);
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    TraceSpan null_span(nullptr, "window-probe");
    TraceSpan disabled_span(&sink, "window-probe", i);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_TRUE(sink.Snapshot().empty());
  sink.set_enabled(true);
  { TraceSpan span(&sink, "window-probe"); }
  EXPECT_EQ(sink.recorded(), 1u);
}

TEST(TraceTest, ConcurrentRecordingFromPoolWorkers) {
  TraceSink sink(/*capacity=*/8192);
  ThreadPool pool(4);
  constexpr size_t kSpansPerTask = 50;
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 8; ++t) {
    futures.push_back(pool.Submit([&sink] {
      for (size_t i = 0; i < kSpansPerTask; ++i) {
        TraceSpan span(&sink, "worker-span");
      }
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sink.recorded(), 8 * kSpansPerTask);
  EXPECT_EQ(sink.CountSpans("worker-span"), 8 * kSpansPerTask);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(MetricsTest, CounterAggregatesAcrossThreadPoolWorkers) {
  MetricsRegistry registry;
  Counter counter = registry.GetCounter("test.rows");
  ThreadPool pool(4);
  constexpr uint64_t kPerTask = 1000;
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 8; ++t) {
    futures.push_back(pool.Submit([counter] {
      for (uint64_t i = 0; i < kPerTask; ++i) counter.Increment();
    }));
  }
  for (auto& f : futures) f.get();
  counter.Add(5);  // the aggregating thread contributes its own shard
  const MetricsSnapshot snapshot = registry.Aggregate();
  EXPECT_EQ(snapshot.CounterValue("test.rows"), 8 * kPerTask + 5);
}

TEST(MetricsTest, RegistrationIsIdempotentByName) {
  MetricsRegistry registry;
  Counter a = registry.GetCounter("test.same");
  Counter b = registry.GetCounter("test.same");
  a.Add(2);
  b.Add(3);
  EXPECT_EQ(registry.Aggregate().CounterValue("test.same"), 5u);
}

TEST(MetricsTest, GaugeLastSetWins) {
  MetricsRegistry registry;
  Gauge gauge = registry.GetGauge("test.threads");
  gauge.Set(4);
  gauge.Set(2);
  EXPECT_EQ(registry.Aggregate().GaugeValue("test.threads"), 2);
}

TEST(MetricsTest, InertHandlesAreSafe) {
  Counter counter;  // default-constructed: no registry
  counter.Increment();
  Gauge gauge;
  gauge.Set(7);
  LatencyHistogram histogram;
  histogram.ObserveNanos(10);
  // Nothing to assert beyond "did not crash": the handles are inert.
}

TEST(MetricsTest, HistogramTracksCountSumMinMax) {
  MetricsRegistry registry;
  LatencyHistogram histogram = registry.GetHistogram("test.latency");
  histogram.ObserveNanos(100);
  histogram.ObserveNanos(200);
  histogram.ObserveNanos(400);
  const MetricsSnapshot snapshot = registry.Aggregate();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramSnapshot& h = snapshot.histograms[0];
  EXPECT_EQ(h.name, "test.latency");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum_ns, 700u);
  EXPECT_EQ(h.min_ns, 100u);
  EXPECT_EQ(h.max_ns, 400u);
  // Power-of-two buckets make quantiles upper bounds: monotone in q and
  // never below the true value.
  EXPECT_GE(h.QuantileNanos(0.5), 100u);
  EXPECT_LE(h.QuantileNanos(0.5), h.QuantileNanos(0.99));
}

TEST(MetricsTest, OverflowPastCapacityReturnsInertHandles) {
  MetricsRegistry registry;
  for (size_t i = 0; i < MetricsRegistry::kMaxCounters + 10; ++i) {
    Counter c = registry.GetCounter("test.c" + std::to_string(i));
    c.Increment();
  }
  EXPECT_GT(registry.overflow_count(), 0u);
  const MetricsSnapshot snapshot = registry.Aggregate();
  EXPECT_LE(snapshot.counters.size(), MetricsRegistry::kMaxCounters);
  EXPECT_EQ(snapshot.CounterValue("test.c0"), 1u);
}

TEST(RunReportTest, JsonCarriesSchemaVersionStatsMetricsAndTrace) {
  MetricsRegistry registry;
  registry.GetCounter("skyline.sfs.runs").Increment();
  registry.GetGauge("skyline.sfs.threads_used").Set(2);
  registry.GetHistogram("skyline.sfs.sort_seconds").ObserveSeconds(0.25);
  TraceSink trace;
  { TraceSpan span(&trace, "presort"); }

  RunReport report;
  report.tool = "trace_metrics_test";
  report.algorithm = "sfs";
  report.stats.input_rows = 1000;
  report.stats.output_rows = 10;
  report.stats.passes = 2;
  report.wall_seconds = 0.5;
  report.labels.emplace_back("distribution", "uniform");
  report.numbers.emplace_back("threads_requested", 2.0);
  report.metrics = &registry;
  report.trace = &trace;

  const std::string json = RenderRunReportJson(report);
  for (const char* key :
       {"\"schema_version\": 1", "\"tool\": \"trace_metrics_test\"",
        "\"algorithm\": \"sfs\"", "\"stats\"", "\"input_rows\": 1000",
        "\"output_rows\": 10", "\"passes\": 2", "\"labels\"",
        "\"distribution\": \"uniform\"", "\"numbers\"",
        "\"threads_requested\"", "\"metrics\"", "\"counters\"",
        "\"skyline.sfs.runs\": 1", "\"gauges\"", "\"histograms\"",
        "\"trace\"", "\"spans\"", "\"name\": \"presort\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key
                                                 << " in:\n" << json;
  }
  // Structurally sound: braces and brackets balance, document ends in one
  // top-level object.
  long depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(json.back(), '\n');
}

TEST(RunReportTest, OmitsSinkSectionsWhenNotAttached) {
  RunReport report;
  report.tool = "trace_metrics_test";
  const std::string json = RenderRunReportJson(report);
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
  EXPECT_EQ(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
}

TEST(RunReportTest, TextRendererMentionsToolAndStats) {
  TraceSink trace;
  { TraceSpan span(&trace, "presort"); }
  RunReport report;
  report.tool = "trace_metrics_test";
  report.algorithm = "sfs";
  report.stats.input_rows = 42;
  report.trace = &trace;
  const std::string text = RenderRunReportText(report);
  EXPECT_NE(text.find("trace_metrics_test"), std::string::npos);
  EXPECT_NE(text.find("presort"), std::string::npos);
}

TEST(RunReportTest, PublishRunStatsFeedsRegistry) {
  MetricsRegistry registry;
  SkylineRunStats stats;
  stats.input_rows = 500;
  stats.output_rows = 25;
  stats.passes = 3;
  stats.threads_used = 2;
  stats.sort_seconds = 0.125;
  PublishRunStats(&registry, "skyline.sfs", stats);
  const MetricsSnapshot snapshot = registry.Aggregate();
  EXPECT_EQ(snapshot.CounterValue("skyline.sfs.runs"), 1u);
  EXPECT_EQ(snapshot.CounterValue("skyline.sfs.input_rows"), 500u);
  EXPECT_EQ(snapshot.CounterValue("skyline.sfs.output_rows"), 25u);
  EXPECT_EQ(snapshot.GaugeValue("skyline.sfs.threads_used"), 2);
  // Null registry is a no-op, not a crash.
  PublishRunStats(nullptr, "skyline.sfs", stats);
}

TEST(TraceTest, CountsNameTruncations) {
  TraceSink sink;
  const std::string long_name(2 * TraceEvent::kNameCapacity, 'x');
  { TraceSpan span(&sink, long_name.c_str()); }
  { TraceSpan span(&sink, "short"); }
  // Suffix formatting can push an otherwise-fitting name past capacity.
  { TraceSpan span(&sink, "twenty-nine-characters-name-x", 123456); }
  EXPECT_EQ(sink.recorded(), 3u);
  EXPECT_EQ(sink.truncated(), 2u);
  // The events still land, clipped to capacity (incl. the NUL).
  const std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name_view().size(), TraceEvent::kNameCapacity - 1);
  EXPECT_EQ(events[1].name_view(), "short");

  // The counter is part of the RunReport trace section, next to dropped.
  RunReport report;
  report.tool = "trace_metrics_test";
  report.trace = &sink;
  const std::string json = RenderRunReportJson(report);
  EXPECT_NE(json.find("\"truncated\": 2"), std::string::npos) << json;
  const std::string text = RenderRunReportText(report);
  EXPECT_NE(text.find("truncated"), std::string::npos) << text;

  sink.Clear();
  EXPECT_EQ(sink.truncated(), 0u);
}

TEST(TraceTest, ConcurrentWraparoundKeepsAccounting) {
  // Recorders racing past capacity: the ring keeps exactly `capacity`
  // events and the books balance — recorded == kept + dropped.
  constexpr size_t kCapacity = 64;
  TraceSink sink(kCapacity);
  ThreadPool pool(4);
  constexpr size_t kTasks = 8;
  constexpr size_t kSpansPerTask = 100;
  std::vector<std::future<void>> futures;
  for (size_t t = 0; t < kTasks; ++t) {
    futures.push_back(pool.Submit([&sink, t] {
      for (size_t i = 0; i < kSpansPerTask; ++i) {
        TraceSpan span(&sink, "wrap", static_cast<int64_t>(t));
      }
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sink.recorded(), kTasks * kSpansPerTask);
  const std::vector<TraceEvent> kept = sink.Snapshot();
  EXPECT_EQ(kept.size(), kCapacity);
  EXPECT_EQ(sink.recorded(), kept.size() + sink.dropped());

  // Deterministic single-writer wraparound: Snapshot returns oldest-first
  // record order, i.e. the newest `capacity` spans in the order recorded.
  sink.Clear();
  for (int i = 0; i < 150; ++i) {
    TraceSpan span(&sink, "seq", i);
  }
  const std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].name_view(),
              "seq-" + std::to_string(150 - kCapacity + i));
  }
}

TEST(MetricsTest, QuantileEstimatesInterpolateWithinBuckets) {
  MetricsRegistry registry;
  LatencyHistogram histogram = registry.GetHistogram("test.latency");
  // 100 observations spread across one power-of-two bucket [1024, 2048).
  for (int i = 0; i < 100; ++i) {
    histogram.ObserveNanos(1024 + i * 10);
  }
  const MetricsSnapshot snapshot = registry.Aggregate();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramSnapshot& h = snapshot.histograms[0];

  // The coarse bound reports the bucket's upper edge for every quantile;
  // the estimate interpolates inside the bucket instead.
  const uint64_t p50 = h.QuantileEstimateNanos(0.5);
  const uint64_t p90 = h.QuantileEstimateNanos(0.9);
  const uint64_t p99 = h.QuantileEstimateNanos(0.99);
  EXPECT_GE(p50, h.min_ns);
  EXPECT_LE(p99, h.max_ns);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LT(p50, p90) << "interpolation should separate p50 from p90 "
                         "within one bucket";
  // Never above the conservative bucket-edge bound.
  EXPECT_LE(p50, h.QuantileNanos(0.5));

  // Degenerate one-observation histogram: the estimate collapses to the
  // single recorded value.
  MetricsRegistry one_reg;
  one_reg.GetHistogram("test.single").ObserveNanos(777);
  const MetricsSnapshot one = one_reg.Aggregate();
  ASSERT_EQ(one.histograms.size(), 1u);
  EXPECT_EQ(one.histograms[0].QuantileEstimateNanos(0.5), 777u);
  EXPECT_EQ(one.histograms[0].QuantileEstimateNanos(0.99), 777u);
}

TEST(RunReportTest, JsonAndTextCarryQuantileEstimates) {
  MetricsRegistry registry;
  LatencyHistogram histogram = registry.GetHistogram("skyline.sfs.sort_seconds");
  for (int i = 1; i <= 10; ++i) {
    histogram.ObserveNanos(static_cast<uint64_t>(i) * 100000);
  }
  RunReport report;
  report.tool = "trace_metrics_test";
  report.metrics = &registry;
  const std::string json = RenderRunReportJson(report);
  for (const char* key : {"\"p50_est_ns\"", "\"p90_est_ns\"", "\"p99_est_ns\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  const std::string text = RenderRunReportText(report);
  EXPECT_NE(text.find("p50="), std::string::npos) << text;
  EXPECT_NE(text.find("p90="), std::string::npos) << text;
  EXPECT_NE(text.find("p99="), std::string::npos) << text;
}

TEST(LoggingTest, HandlerCapturesAndRestores) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  LogHandler previous = SetLogHandler(
      [&captured](LogLevel level, std::string_view message) {
        captured.emplace_back(level, std::string(message));
      });
  LogWarning("degraded parallelism: test message");
  LogInfo("info message");
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarning);
  EXPECT_EQ(captured[0].second, "degraded parallelism: test message");
  EXPECT_EQ(captured[1].first, LogLevel::kInfo);
  // Restoring the previous handler detaches the capture.
  SetLogHandler(std::move(previous));
  LogWarning("after restore");
  EXPECT_EQ(captured.size(), 2u);
}

TEST(LoggingTest, HandlerMaySilenceEverything) {
  LogHandler previous =
      SetLogHandler([](LogLevel, std::string_view) { /* swallow */ });
  LogError("this must not reach stderr");
  SetLogHandler(std::move(previous));
}

}  // namespace
}  // namespace skyline

