#include "core/window.h"

#include <cstring>

#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

class WindowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Schema shaped like the paper's tuples: skyline attrs + fat payload.
    auto schema = Schema::Make({ColumnDef::Int32("a0"), ColumnDef::Int32("a1"),
                                ColumnDef::FixedString("payload", 92)});
    ASSERT_TRUE(schema.ok());
    schema_ = std::move(schema).value();
    auto spec = SkylineSpec::Make(
        schema_, {{"a0", Directive::kMax}, {"a1", Directive::kMax}});
    ASSERT_TRUE(spec.ok());
    spec_.emplace(std::move(spec).value());
  }

  std::vector<char> Row(int32_t a, int32_t b, char fill = 'p') {
    std::vector<char> row(schema_.row_width(), fill);
    std::memcpy(row.data(), &a, 4);
    std::memcpy(row.data() + 4, &b, 4);
    return row;
  }

  Schema schema_;
  std::optional<SkylineSpec> spec_;
};

TEST_F(WindowTest, CapacityFollowsEntryWidth) {
  // Full rows: 100 bytes -> 40 per page. Projected: 8 bytes -> 512 per page.
  Window full(&*spec_, 2, /*projected=*/false);
  EXPECT_EQ(full.capacity(), 80u);
  EXPECT_EQ(full.entry_width(), 100u);
  Window proj(&*spec_, 2, /*projected=*/true);
  EXPECT_EQ(proj.capacity(), 1024u);
  EXPECT_EQ(proj.entry_width(), 8u);
}

TEST_F(WindowTest, FirstRowAlwaysAdded) {
  Window w(&*spec_, 1, false);
  auto row = Row(5, 5);
  EXPECT_EQ(w.Test(row.data()), Window::Verdict::kAdded);
  EXPECT_EQ(w.entry_count(), 1u);
}

TEST_F(WindowTest, DominatedRowRejected) {
  Window w(&*spec_, 1, false);
  auto top = Row(5, 5), below = Row(3, 3);
  ASSERT_EQ(w.Test(top.data()), Window::Verdict::kAdded);
  EXPECT_EQ(w.Test(below.data()), Window::Verdict::kDominated);
  EXPECT_EQ(w.entry_count(), 1u);
}

TEST_F(WindowTest, IncomparableRowAdded) {
  Window w(&*spec_, 1, false);
  auto a = Row(5, 1), b = Row(1, 5);
  ASSERT_EQ(w.Test(a.data()), Window::Verdict::kAdded);
  EXPECT_EQ(w.Test(b.data()), Window::Verdict::kAdded);
  EXPECT_EQ(w.entry_count(), 2u);
}

TEST_F(WindowTest, SortViolationDetected) {
  Window w(&*spec_, 1, false);
  auto low = Row(1, 1), high = Row(2, 2);
  ASSERT_EQ(w.Test(low.data()), Window::Verdict::kAdded);
  EXPECT_EQ(w.Test(high.data()), Window::Verdict::kSortViolation);
}

TEST_F(WindowTest, EquivalentWithProjectionDedups) {
  Window w(&*spec_, 1, /*projected=*/true);
  auto a = Row(5, 5, 'x'), b = Row(5, 5, 'y');  // differ only in payload
  ASSERT_EQ(w.Test(a.data()), Window::Verdict::kAdded);
  EXPECT_EQ(w.Test(b.data()), Window::Verdict::kDuplicateSkyline);
  EXPECT_EQ(w.entry_count(), 1u);
}

TEST_F(WindowTest, EquivalentWithoutProjectionStoresBoth) {
  Window w(&*spec_, 1, /*projected=*/false);
  auto a = Row(5, 5, 'x'), b = Row(5, 5, 'y');
  ASSERT_EQ(w.Test(a.data()), Window::Verdict::kAdded);
  EXPECT_EQ(w.Test(b.data()), Window::Verdict::kAdded);
  EXPECT_EQ(w.entry_count(), 2u);
}

TEST_F(WindowTest, ProjectedEntriesStoreOnlyAttributes) {
  Window w(&*spec_, 1, /*projected=*/true);
  auto row = Row(7, 9, 'z');
  ASSERT_EQ(w.Test(row.data()), Window::Verdict::kAdded);
  RowView entry(&spec_->projected_schema(), w.EntryAt(0));
  EXPECT_EQ(entry.GetInt32(0), 7);
  EXPECT_EQ(entry.GetInt32(1), 9);
}

TEST_F(WindowTest, FullWindowReportsOverflow) {
  // 1 page of 100-byte entries = 40 slots; fill with mutually incomparable
  // rows (a ascending, b descending).
  Window w(&*spec_, 1, /*projected=*/false);
  for (int i = 0; i < 40; ++i) {
    auto row = Row(i, 1000 - i);
    ASSERT_EQ(w.Test(row.data()), Window::Verdict::kAdded) << i;
  }
  EXPECT_TRUE(w.full());
  auto extra = Row(40, 1000 - 40);
  EXPECT_EQ(w.Test(extra.data()), Window::Verdict::kWindowFull);
  // Dominated rows are still rejected when full.
  auto dominated = Row(0, 0);
  EXPECT_EQ(w.Test(dominated.data()), Window::Verdict::kDominated);
}

TEST_F(WindowTest, ClearEmptiesWindow) {
  Window w(&*spec_, 1, false);
  auto row = Row(5, 5);
  ASSERT_EQ(w.Test(row.data()), Window::Verdict::kAdded);
  w.Clear();
  EXPECT_EQ(w.entry_count(), 0u);
  // Previously-dominated row is now accepted (fresh pass semantics).
  auto below = Row(3, 3);
  EXPECT_EQ(w.Test(below.data()), Window::Verdict::kAdded);
}

TEST_F(WindowTest, ComparisonsAreCounted) {
  // The columnar window charges every live entry of each *tested* block and
  // nothing for zone-pruned blocks: an incomparable probe that the zone
  // maps dispose of costs zero, while a dominated probe costs the whole
  // block rather than the scalar loop's early-exit prefix.
  Window w(&*spec_, 1, false);
  auto a = Row(5, 1), b = Row(1, 5), c = Row(0, 0);
  w.Test(a.data());  // empty window: no comparisons, no block
  w.Test(b.data());  // (1,5) vs {(5,1)}: provably unrelated -> pruned
  EXPECT_EQ(w.comparisons(), 0u);
  EXPECT_EQ(w.blocks_pruned(), 1u);
  w.Test(c.data());  // (0,0) could be dominated: block of 2 is tested
  EXPECT_EQ(w.comparisons(), 2u);
  EXPECT_EQ(w.batch_comparisons(), 2u);
  EXPECT_EQ(w.blocks_pruned(), 1u);
}

TEST_F(WindowTest, ZoneMapsPruneUnrelatedBlocks) {
  // 65 mutually-incomparable entries span two 64-entry blocks. The probe
  // (100, 500) beats every entry on a0 (so no entry can dominate it) and
  // loses to every entry on a1 (so it can dominate no entry): both blocks'
  // zone maps prove this and the probe is admitted without a single
  // dominance comparison.
  Window w(&*spec_, 2, /*projected=*/false);
  for (int i = 0; i <= 64; ++i) {
    auto row = Row(i, 1000 - i);
    ASSERT_EQ(w.Test(row.data()), Window::Verdict::kAdded) << i;
  }
  const uint64_t before = w.comparisons();
  const uint64_t pruned_before = w.blocks_pruned();
  auto probe = Row(100, 500);
  EXPECT_EQ(w.Test(probe.data()), Window::Verdict::kAdded);
  EXPECT_EQ(w.comparisons(), before);
  EXPECT_EQ(w.blocks_pruned(), pruned_before + 2);
  EXPECT_STRNE(w.kernel_name(), "row");  // int32 spec takes the fast path
}

TEST_F(WindowTest, DiffColumnsKeptInProjectedEntries) {
  auto schema = Schema::Make({ColumnDef::Int32("g"), ColumnDef::Int32("v"),
                              ColumnDef::FixedString("p", 50)});
  ASSERT_TRUE(schema.ok());
  auto spec = SkylineSpec::Make(
      schema.value(), {{"g", Directive::kDiff}, {"v", Directive::kMax}});
  ASSERT_TRUE(spec.ok());
  Window w(&spec.value(), 1, /*projected=*/true);

  std::vector<char> r1(schema.value().row_width(), 0);
  int32_t g = 1, v = 10;
  std::memcpy(r1.data(), &g, 4);
  std::memcpy(r1.data() + 4, &v, 4);
  ASSERT_EQ(w.Test(r1.data()), Window::Verdict::kAdded);

  // Same value, different group: incomparable, added.
  std::vector<char> r2 = r1;
  g = 2;
  v = 3;
  std::memcpy(r2.data(), &g, 4);
  std::memcpy(r2.data() + 4, &v, 4);
  EXPECT_EQ(w.Test(r2.data()), Window::Verdict::kAdded);

  // Worse value in group 1: dominated.
  std::vector<char> r3 = r1;
  g = 1;
  v = 5;
  std::memcpy(r3.data(), &g, 4);
  std::memcpy(r3.data() + 4, &v, 4);
  EXPECT_EQ(w.Test(r3.data()), Window::Verdict::kDominated);
}

}  // namespace
}  // namespace skyline
