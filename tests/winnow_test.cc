#include "core/winnow.h"

#include "core/dominance.h"
#include "core/naive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace skyline {
namespace {

using testing_util::MakeIntTable;
using testing_util::MakeUniformTable;
using testing_util::OracleSkylineMultiset;
using testing_util::ReadAll;
using testing_util::RowMultiset;

class WinnowTest : public ::testing::Test {
 protected:
  std::unique_ptr<Env> env_ = NewMemEnv();
};

TEST_F(WinnowTest, SkylineAsSpecialCase) {
  // Winnow under attribute-wise dominance equals the skyline.
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 1500, 3, 301));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax}}));
  PreferenceRelation dominance = [&spec](const RowView& a, const RowView& b) {
    return Dominates(spec, a.data(), b.data());
  };
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(
      Table result, ComputeWinnow(t, dominance, WinnowOptions{}, "out", &stats));
  std::vector<char> rows = ReadAll(result);
  EXPECT_EQ(RowMultiset(rows.data(), result.row_count(),
                        t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
}

TEST_F(WinnowTest, NonMonotonePreference) {
  // A preference no monotone scoring expresses: prefer a0 "closer to 50"
  // with a1 as tie-breaker — interval preferences (the paper's ten-baths
  // house example from Section 2).
  ASSERT_OK_AND_ASSIGN(
      Table t, MakeIntTable(env_.get(), "t", 2,
                            {{50, 1}, {49, 9}, {10, 9}, {90, 5}, {50, 7}}));
  auto closeness = [](int32_t v) { return std::abs(v - 50); };
  PreferenceRelation prefers = [&](const RowView& a, const RowView& b) {
    const int ca = closeness(a.GetInt32(0));
    const int cb = closeness(b.GetInt32(0));
    if (ca != cb) return ca < cb;
    return a.GetInt32(1) > b.GetInt32(1);
  };
  ASSERT_OK_AND_ASSIGN(
      Table result, ComputeWinnow(t, prefers, WinnowOptions{}, "out", nullptr));
  // Total order here: the unique best tuple is (50, 7).
  ASSERT_EQ(result.row_count(), 1u);
  std::vector<char> rows = ReadAll(result);
  RowView best(&t.schema(), rows.data());
  EXPECT_EQ(best.GetInt32(0), 50);
  EXPECT_EQ(best.GetInt32(1), 7);
}

TEST_F(WinnowTest, MultiPassWithTinyWindow) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(env_.get(), "t", 2500, 5, 302));
  ASSERT_OK_AND_ASSIGN(
      SkylineSpec spec,
      SkylineSpec::Make(t.schema(), {{"a0", Directive::kMax},
                                     {"a1", Directive::kMax},
                                     {"a2", Directive::kMax},
                                     {"a3", Directive::kMax},
                                     {"a4", Directive::kMax}}));
  PreferenceRelation dominance = [&spec](const RowView& a, const RowView& b) {
    return Dominates(spec, a.data(), b.data());
  };
  WinnowOptions opts;
  opts.window_pages = 1;
  SkylineRunStats stats;
  ASSERT_OK_AND_ASSIGN(Table result,
                       ComputeWinnow(t, dominance, opts, "out", &stats));
  std::vector<char> rows = ReadAll(result);
  EXPECT_EQ(RowMultiset(rows.data(), result.row_count(),
                        t.schema().row_width()),
            OracleSkylineMultiset(t, spec));
  EXPECT_GT(stats.passes, 1u);
}

TEST_F(WinnowTest, RejectsNonIrreflexivePreference) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{1, 1}}));
  PreferenceRelation at_least = [](const RowView& a, const RowView& b) {
    return a.GetInt32(0) >= b.GetInt32(0);  // not strict!
  };
  auto result = ComputeWinnow(t, at_least, WinnowOptions{}, "out", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(WinnowTest, RejectsNonAntisymmetricPreference) {
  ASSERT_OK_AND_ASSIGN(Table t,
                       MakeIntTable(env_.get(), "t", 2, {{1, 2}, {2, 1}}));
  // "Prefer if better on ANY attribute" — cyclic (each beats the other).
  PreferenceRelation any_better = [](const RowView& a, const RowView& b) {
    return a.GetInt32(0) > b.GetInt32(0) || a.GetInt32(1) > b.GetInt32(1);
  };
  auto result = ComputeWinnow(t, any_better, WinnowOptions{}, "out", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(WinnowTest, RejectsNullPreference) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {{1, 1}}));
  EXPECT_TRUE(ComputeWinnow(t, PreferenceRelation(), WinnowOptions{}, "out",
                            nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(WinnowTest, EmptyInput) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeIntTable(env_.get(), "t", 2, {}));
  PreferenceRelation never = [](const RowView&, const RowView&) {
    return false;
  };
  ASSERT_OK_AND_ASSIGN(Table result,
                       ComputeWinnow(t, never, WinnowOptions{}, "out", nullptr));
  EXPECT_EQ(result.row_count(), 0u);
}

TEST_F(WinnowTest, EmptyPreferenceKeepsEverything) {
  ASSERT_OK_AND_ASSIGN(Table t,
                       MakeIntTable(env_.get(), "t", 2, {{1, 1}, {2, 2}}));
  PreferenceRelation never = [](const RowView&, const RowView&) {
    return false;
  };
  ASSERT_OK_AND_ASSIGN(Table result,
                       ComputeWinnow(t, never, WinnowOptions{}, "out", nullptr));
  EXPECT_EQ(result.row_count(), 2u);
}

}  // namespace
}  // namespace skyline
